"""Telemetry overhead gate: the zero-overhead-when-off contract (PR 8).

The telemetry core promises that the fused RTL backend pays nothing
measurable with no session open (the instrumented sites are one global
read + identity check at Python re-entry points, never inside the
exec-compiled loops) and stays within 3% with a session active
(``counters[name] += 1`` on a plain dict plus a decode-cache length
probe per ``_fused_run`` call).

Measurement discipline: the two modes are *interleaved* rep by rep
(off, on, off, on, ...) and gated on the best rep of each — the min is
the noise-robust estimator for a fixed workload (any slowdown of the
minimum is real cost, while means absorb scheduler preemption), and
interleaving keeps slow drift (thermal, cache pressure from neighbor
jobs) from loading one side of the ratio.
"""

import time

from repro import obs
from repro.isa import assemble
from repro.rtl.core_sim import RisspSim
from repro.rtl.rissp import build_rissp

#: 2 instructions/iteration in the hot loop -> ~200k retirements/rep.
_ITERS = 100_000

_LOOP = f"""
    .text
    li a0, 0
    li a1, {_ITERS}
loop:
    addi a0, a0, 1
    bne a0, a1, loop
    ecall
"""

_REPS = 8

#: Acceptance floor: telemetry-on fused throughput >= 0.97x telemetry-off.
_MIN_RATIO = 0.97


def _one_rep(core, program, telemetry_on):
    sim = RisspSim(core, program)
    if telemetry_on:
        with obs.session() as telemetry:
            started = time.perf_counter()
            result = sim.run(max_instructions=1_000_000)
            elapsed = time.perf_counter() - started
        assert telemetry.counters["fused.exit.halt"] == 1
        assert telemetry.counters["fused.retired"] == result.instructions
    else:
        assert obs.get() is None
        started = time.perf_counter()
        result = sim.run(max_instructions=1_000_000)
        elapsed = time.perf_counter() - started
    assert result.halted_by == "ecall"
    return result.instructions, elapsed


def test_bench_telemetry_overhead(benchmark, bench_artifact):
    core = build_rissp(["addi", "add", "bne", "lui", "ecall"])
    program = assemble(_LOOP)
    _one_rep(core, program, False)   # warm compile + decode caches

    def report():
        off_times, on_times = [], []
        for _ in range(_REPS):
            instructions, elapsed = _one_rep(core, program, False)
            off_times.append(elapsed)
            _, elapsed = _one_rep(core, program, True)
            on_times.append(elapsed)
        return instructions, min(off_times), min(on_times)

    instructions, best_off, best_on = benchmark.pedantic(
        report, rounds=1, iterations=1)
    mips_off = instructions / best_off / 1e6
    mips_on = instructions / best_on / 1e6
    ratio = best_off / best_on     # == throughput_on / throughput_off
    print("\n=== Telemetry overhead (fused loop, interleaved best-of-"
          f"{_REPS}) ===")
    print(f"telemetry off: {mips_off:6.3f} MIPS")
    print(f"telemetry on:  {mips_on:6.3f} MIPS "
          f"({100 * ratio:.1f}% of off)")
    bench_artifact("telemetry_overhead", {
        "instructions_per_rep": instructions,
        "reps": _REPS,
        "fused_mips_off": mips_off,
        "fused_mips_on": mips_on,
        "on_over_off_ratio": ratio,
        "min_ratio_gate": _MIN_RATIO,
    })
    assert ratio >= _MIN_RATIO, (
        f"telemetry-on fused throughput regressed: {100 * ratio:.1f}% "
        f"of telemetry-off < {100 * _MIN_RATIO:.0f}%")
