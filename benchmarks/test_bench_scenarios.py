"""Scenario-engine acceptance gates (PR 9 tentpole).

Three claims the coverage-guided engine must earn, each gated here and
recorded in a schema-validated bench artifact:

1. **Beats the fixed workloads.**  A 64-scenario campaign strictly
   increases covered bins over the three fixed SoC workloads
   (``af_detect_irq`` / ``sensor_streaming`` / ``label_refresh``) in
   each gated family: trap causes, arbitration orderings, wfi wake
   paths — the fixed firmware exercises the paths its authors thought
   of; the generator must reach the rest.
2. **Mutation earns its keep.**  At equal total budget, the guided
   split (random + mutation toward uncovered bins) reaches at least one
   bin the random-only campaign misses.  The random generator draws
   fleet stunts only from the encodings a random RV32E program surface
   produces; the ``rv32e_bound`` divergence needs a *directed* word, so
   guidance has something real to find.
3. **Failures replay.**  Any failure a campaign reports must rebuild
   its exact scenario from the ``(scenario-id, seed)`` pair alone.

All campaign numbers are pure functions of the seeds, so these gates
are deterministic — no timing, no tolerance bands.
"""

from repro.scenario import (CoverageMap, family_bins,
                            fixed_workload_coverage, outcome_coverage,
                            replay_scenario, scenario_campaign)
from repro.scenario.coverage import GATE_FAMILIES

#: Equal-budget split for gate 2: 64 random-only vs 48 random + up to
#: 16 mutated (the guided side may stop early on saturation).
_TOTAL = 64
_GUIDED_RANDOM = 48


def test_campaign_beats_fixed_workloads_and_mutation_beats_random(
        bench_artifact):
    baseline = fixed_workload_coverage()
    campaign = scenario_campaign(count=_TOTAL, workers=4,
                                 mutation_budget=16)
    coverage = campaign["coverage"]

    # Gate 1: strict per-family increase over the fixed workloads.
    family_rows = {}
    for prefix in GATE_FAMILIES:
        bins = family_bins(prefix)
        base_n = sum(1 for name in bins if baseline.counts[name])
        camp_n = sum(1 for name in bins if coverage.counts[name])
        family_rows[prefix] = {"bins": len(bins), "fixed": base_n,
                               "campaign": camp_n}
        assert camp_n > base_n, (
            f"{prefix} family: campaign covered {camp_n}, fixed "
            f"workloads already covered {base_n}")

    # Gate 2: guided vs random-only at equal budget.
    random_only = scenario_campaign(count=_TOTAL, workers=4,
                                    probes=False, mutation_budget=0)
    guided = scenario_campaign(count=_GUIDED_RANDOM, workers=4,
                               probes=False, mutation_budget=16)
    guided_spent = len(guided["scenarios"])
    assert guided_spent <= _TOTAL
    guided_only = set(guided["coverage"].covered()) \
        - set(random_only["coverage"].covered())
    assert guided_only, ("mutation loop found nothing the random-only "
                         "campaign missed at equal budget")

    # Gate 3: every reported failure replays from its pair (clean
    # campaigns satisfy this vacuously — so assert clean too).
    for row in campaign["failures"]:
        assert replay_scenario(row["scenario_id"], row["seed"]) \
            is not None
    assert campaign["failures"] == []

    # The merged map really is the sum of its rows (no hidden state).
    total = CoverageMap()
    for row in campaign["scenarios"]:
        total.merge(outcome_coverage(row))
    assert total == coverage

    bench_artifact("scenario_coverage", {
        "bins": len(coverage.counts),
        "campaign_covered": len(coverage.covered()),
        "fixed_workload_covered": len(baseline.covered()),
        "families": family_rows,
        "random_only_covered": len(random_only["coverage"].covered()),
        "guided_covered": len(guided["coverage"].covered()),
        "guided_scenarios_spent": guided_spent,
        "guided_exclusive_bins": ",".join(sorted(guided_only)),
        "phases": campaign["phases"],
    })
