"""RTL simulator throughput: compiled backend vs the tree-walking oracle.

Locks in the PR 2 tentpole: the exec-compiled straight-line evaluator
(:mod:`repro.rtl.compiled`) must run whole-program RISSP simulation at
>=10x the cycle throughput of the interpreted reference backend.  Both
sides run the same full-RV32E core on the same loop microbenchmark in the
same process, so the gating ratio is load-invariant; absolute cycles/sec
figures are printed for the CI job log next to the ISS MIPS numbers.
"""

import time

from repro.isa import INSTRUCTIONS, assemble
from repro.rtl import build_rissp
from repro.rtl.core_sim import RisspSim

_LOOP = """.text
main:
    li a0, 0
    li a1, {n}
loop:
    addi a0, a0, 1
    bne a0, a1, loop
    ret
"""

#: Compiled backend retires 4 instructions/iteration: 120k cycles total.
_COMPILED_ITERS = 30_000
#: The interpreter runs ~1k cycles/sec; keep its share of the wall-clock
#: comparable to the compiled side's.
_INTERP_CYCLES = 3_000


def _cycles_per_sec(core, program, backend, max_cycles, expect_halt):
    sim = RisspSim(core, program, backend=backend)
    started = time.perf_counter()
    result = sim.run(max_instructions=max_cycles)
    elapsed = time.perf_counter() - started
    if expect_halt:
        assert result.halted_by == "ecall"
        assert result.exit_code == _COMPILED_ITERS
    return result.instructions / elapsed


def test_bench_rtl_throughput(benchmark, bench_artifact):
    core = build_rissp([d.mnemonic for d in INSTRUCTIONS])

    def report():
        return {
            "interpreter": _cycles_per_sec(
                core, assemble(_LOOP.format(n=_INTERP_CYCLES)),
                "interpreter", _INTERP_CYCLES, expect_halt=False),
            "compiled": _cycles_per_sec(
                core, assemble(_LOOP.format(n=_COMPILED_ITERS)),
                "compiled", 4 * _COMPILED_ITERS + 100, expect_halt=True),
        }

    stats = benchmark.pedantic(report, rounds=1, iterations=1)
    speedup = stats["compiled"] / stats["interpreter"]
    print("\n=== RTL simulator throughput (full RV32E RISSP) ===")
    print(f"interpreted evaluator: {stats['interpreter']:8.0f} cycles/sec")
    print(f"compiled backend:      {stats['compiled']:8.0f} cycles/sec "
          f"({speedup:.1f}x)")
    bench_artifact("rtl_throughput", {
        "interpreter_cycles_per_sec": stats["interpreter"],
        "compiled_cycles_per_sec": stats["compiled"],
        "compiled_speedup": speedup,
    })
    assert speedup >= 10.0, (
        f"compiled RTL backend speedup regressed: {speedup:.2f}x < 10x")
