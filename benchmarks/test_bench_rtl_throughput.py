"""RTL simulator throughput: fused loop vs per-cycle compiled vs oracle.

Locks in two tentpoles at once:

* **PR 2**: the per-cycle ``exec``-compiled evaluator must run
  whole-program RISSP simulation at >=10x the cycle throughput of the
  interpreted reference backend.
* **PR 4**: the fused whole-cycle loop (:func:`repro.rtl.compiled
  .compile_core` — fetch, comb settle, memory and register commit in one
  generated function, with a per-word decode cache) must add >=3x on top
  of the per-cycle compiled backend.

All sides run the same full-RV32E core on the same loop microbenchmark in
the same process, so the gating ratios are load-invariant; absolute
cycles/sec figures are printed for the CI job log next to the ISS MIPS
numbers and written to the ``BENCH_rtl_throughput.json`` artifact.
"""

import time

from repro.isa import INSTRUCTIONS, assemble
from repro.rtl import build_rissp
from repro.rtl.core_sim import RisspSim

_LOOP = """.text
main:
    li a0, 0
    li a1, {n}
loop:
    addi a0, a0, 1
    bne a0, a1, loop
    ret
"""

#: Per-backend loop iterations (4 instructions each), sized so every
#: backend contributes a comparable slice of wall-clock: the fused loop
#: runs ~200k cycles/sec, per-cycle compiled ~30k, the interpreter ~1k.
_ITERS = {"fused": 60_000, "compiled": 15_000}
#: The interpreter leg never halts; it just burns a fixed cycle budget.
_INTERP_CYCLES = 2_500


def _cycles_per_sec(core, backend):
    if backend == "interpreter":
        program = assemble(_LOOP.format(n=_INTERP_CYCLES))
        max_cycles = _INTERP_CYCLES
    else:
        iters = _ITERS[backend]
        program = assemble(_LOOP.format(n=iters))
        max_cycles = 4 * iters + 100
    sim = RisspSim(core, program, backend=backend)
    started = time.perf_counter()
    result = sim.run(max_instructions=max_cycles)
    elapsed = time.perf_counter() - started
    if backend != "interpreter":
        assert result.halted_by == "ecall"
        assert result.exit_code == _ITERS[backend]
    return result.instructions / elapsed


def test_bench_rtl_throughput(benchmark, bench_artifact):
    core = build_rissp([d.mnemonic for d in INSTRUCTIONS])

    def report():
        return {backend: _cycles_per_sec(core, backend)
                for backend in ("interpreter", "compiled", "fused")}

    stats = benchmark.pedantic(report, rounds=1, iterations=1)
    compiled_speedup = stats["compiled"] / stats["interpreter"]
    fused_speedup = stats["fused"] / stats["compiled"]
    print("\n=== RTL simulator throughput (full RV32E RISSP) ===")
    print(f"interpreted evaluator: {stats['interpreter']:8.0f} cycles/sec")
    print(f"compiled per-cycle:    {stats['compiled']:8.0f} cycles/sec "
          f"({compiled_speedup:.1f}x)")
    print(f"fused cycle loop:      {stats['fused']:8.0f} cycles/sec "
          f"({fused_speedup:.1f}x over per-cycle, "
          f"{stats['fused'] / stats['interpreter']:.0f}x total)")
    bench_artifact("rtl_throughput", {
        "interpreter_cycles_per_sec": stats["interpreter"],
        "compiled_cycles_per_sec": stats["compiled"],
        "fused_cycles_per_sec": stats["fused"],
        "compiled_speedup": compiled_speedup,
        "fused_speedup_over_compiled": fused_speedup,
    })
    assert compiled_speedup >= 10.0, (
        f"compiled RTL backend speedup regressed: "
        f"{compiled_speedup:.2f}x < 10x")
    assert fused_speedup >= 3.0, (
        f"fused RTL cycle loop speedup regressed: "
        f"{fused_speedup:.2f}x < 3x over the per-cycle compiled backend")
