"""Figure 10: physical implementation of the 3 extreme-edge RISSPs +
both baselines at 300 kHz / 3 V."""

from repro.data import paper
from repro.physical import PAPER_IMPL_KHZ, implement


def test_bench_fig10_physical(benchmark, rissp_reports, rv32e_report,
                              serv_report, paper_subset_reports):
    # The paper implements the three RISSPs from its Table 3 subsets;
    # we do the same (our own compiled subsets are printed by Fig 7).
    targets = {"rv32e": rv32e_report, "serv": serv_report}
    for name in ("af_detect", "armpit", "xgboost"):
        targets[name] = paper_subset_reports[name]

    def run_impl():
        return {name: implement(rep, target_khz=PAPER_IMPL_KHZ)
                for name, rep in targets.items()}

    layouts = benchmark.pedantic(run_impl, rounds=1, iterations=1)
    rv = layouts["rv32e"]
    print("\n=== Figure 10: FlexIC layouts @ 300 kHz / 3 V ===")
    for name, layout in layouts.items():
        print(layout.summary_row())
    print()
    for name in ("af_detect", "armpit", "xgboost"):
        area_sav = 100 * (1 - layouts[name].die_area_mm2 / rv.die_area_mm2)
        pow_sav = 100 * (1 - layouts[name].power_mw / rv.power_mw)
        print(f"{name:<10} area saving {area_sav:5.1f}% (paper "
              f"{paper.PHYS_AREA_SAVING_PCT[name]}%), power saving "
              f"{pow_sav:5.1f}% (paper {paper.PHYS_POWER_SAVING_PCT[name]}%)")
    serv = layouts["serv"]
    print(f"Serv FF fraction {100 * serv.ff_fraction:.0f}% (paper 60%), "
          f"RV32E {100 * rv.ff_fraction:.1f}% (paper 6%)")
    assert abs(serv.ff_fraction - paper.SERV_FF_FRACTION) < 0.05
    assert abs(rv.ff_fraction - paper.RV32E_FF_FRACTION) < 0.03
    # Serv's synthesis-area advantage inverts in layout vs xgboost.
    assert layouts["xgboost"].die_area_mm2 < serv.die_area_mm2
    # armpit lands at Serv-class die area (paper: identical).
    assert abs(layouts["armpit"].die_area_mm2 / serv.die_area_mm2 - 1) < 0.1
    # Serv power is RV32E-class despite the smaller die.
    assert 0.9 < serv.power_mw / rv.power_mw < 1.2
