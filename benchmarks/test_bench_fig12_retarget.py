"""Figure 12: retargeting to the minimal 12-instruction subset."""

from repro.compiler import compile_to_assembly
from repro.core.subset_analysis import extract_subset
from repro.data import paper
from repro.isa import assemble
from repro.retarget import MINIMAL_SUBSET, retarget_assembly
from repro.sim import run_program
from repro.workloads import WORKLOADS

APPS = ("armpit", "xgboost", "af_detect")


def test_bench_fig12_retarget(benchmark):
    def run_retarget():
        out = {}
        for name in APPS:
            asm = compile_to_assembly(WORKLOADS[name].source, "O2")
            original = assemble(asm)
            result = retarget_assembly(asm)
            rewritten = assemble(result.assembly)
            out[name] = (original, rewritten, result)
        return out

    results = benchmark.pedantic(run_retarget, rounds=1, iterations=1)
    print("\n=== Figure 12: code size and distinct instructions ===")
    print(f"target subset ({len(MINIMAL_SUBSET)}): "
          f"{', '.join(MINIMAL_SUBSET)}")
    for name, (orig, new, res) in results.items():
        increase = 100 * (new.code_size_bytes / orig.code_size_bytes - 1)
        d0 = len(extract_subset(orig))
        d1 = len(extract_subset(new))
        print(f"{name:<10} size {orig.code_size_bytes:>5} -> "
              f"{new.code_size_bytes:>5} B (+{increase:.1f}%, paper "
              f"+{paper.RETARGET_SIZE_INCREASE_PCT[name]}%)  distinct "
              f"{d0} -> {d1}")
        # functional equivalence after retargeting
        r0 = run_program(orig, max_instructions=10_000_000)
        r1 = run_program(new, max_instructions=100_000_000)
        assert r0.exit_code == r1.exit_code, name
        # subset compliance
        assert not set(extract_subset(new)) - set(MINIMAL_SUBSET)
        assert increase > 0
    # the paper's af_detect drops 23 -> 12 distinct instructions
    _, new, _ = results["af_detect"]
    assert len(extract_subset(new)) == paper.RETARGET_DISTINCT[
        "af_detect"][1]
