"""Figure 6: maximum clock frequency of RISSPs vs RISSP-RV32E vs Serv."""

from repro.data import paper


def test_bench_fig6_fmax(benchmark, rissp_reports, rv32e_report,
                         serv_report):
    def fmax_table():
        return {name: rep.fmax_khz for name, rep in rissp_reports.items()}

    table = benchmark.pedantic(fmax_table, rounds=1, iterations=1)
    print("\n=== Figure 6: max frequency (kHz), 25 kHz sweep ===")
    for name in sorted(table):
        print(f"{name:<16} {table[name]:>6} kHz")
    print(f"{'RISSP-RV32E':<16} {rv32e_report.fmax_khz:>6} kHz "
          f"(paper {paper.RV32E_FMAX_KHZ})")
    print(f"{'Serv':<16} {serv_report.fmax_khz:>6} kHz "
          f"(paper {paper.SERV_FMAX_KHZ})")
    values = list(table.values())
    print(f"RISSP range: {min(values)}-{max(values)} kHz "
          f"(paper {paper.RISSP_FMAX_RANGE_KHZ})")
    assert rv32e_report.fmax_khz == paper.RV32E_FMAX_KHZ
    assert serv_report.fmax_khz == paper.SERV_FMAX_KHZ
    assert serv_report.fmax_khz >= max(values)  # Serv clocks fastest
    # RISSPs cluster around/above the full-ISA core (the paper's spread
    # dips below 1700 kHz on synthesis noise; our noise model is milder,
    # so we only require an overlapping band).
    assert rv32e_report.fmax_khz <= max(values)
    assert min(values) <= rv32e_report.fmax_khz + 200
