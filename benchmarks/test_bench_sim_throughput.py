"""Simulator throughput: decoded-op cache vs the seed decode/step interpreter.

Locks in the PR 1 tentpole speedup: the golden ISS fast path must retire
the 1.6 M-instruction loop microbenchmark at >=5x the throughput of a naive
interpreter that re-decodes and re-dispatches every retired word (the seed
architecture, ~0.19 MIPS on the reference machine).  Both sides run in the
same process on the same machine, so the ratio is load-invariant; absolute
MIPS figures are printed for the CI job log and written to the
``BENCH_sim_throughput.json`` artifact.

PR 3 adds the interrupts-enabled-but-idle gate: the same loop with the
machine-mode trap subsystem armed (handler installed, MIE+MTIE set, timer
far in the future) must stay within 10% of the plain fast path — the
per-retirement cost of interrupt support is one integer comparison
against a precomputed fire index, never CSR plumbing in the hot loop.
"""

import time

from repro.isa.encoding import decode
from repro.isa.spec import step
from repro.isa.assembler import assemble
from repro.sim import GoldenSim, run_program, run_program_serv
from repro.soc import SocSpec

_LOOP = """.text
main:
    li a0, 0
    li a1, {n}
loop:
    addi a0, a0, 1
    bne a0, a1, loop
    ret
"""

#: Same loop as event-driven firmware: trap handler installed and the
#: timer interrupt armed (mtimecmp stays at its far-future reset value),
#: terminating through the power gate because ecall now traps.
_LOOP_SOC_IDLE = """.equ PWR, 0x40000
.text
main:
    la t0, handler
    csrw mtvec, t0
    csrsi mstatus, 8
    li t1, 128
    csrw mie, t1
    li a0, 0
    li a1, {n}
loop:
    addi a0, a0, 1
    bne a0, a1, loop
    li t0, PWR
    sw a0, 0(t0)
hang:
    j hang
handler:
    mret
"""

#: The fast-path benchmark retires 4 instructions/iteration: 1.6 M total.
_FAST_ITERS = 400_000
_NAIVE_INSTRUCTIONS = 60_000

# The seed decoded every word on every retirement; bypass the lru_cache to
# reproduce that cost honestly.
_uncached_decode = decode.__wrapped__


def _naive_mips(program, max_instructions):
    """The seed inner loop: fetch, decode, spec.step, apply Effects."""
    sim = GoldenSim(program)
    memory = sim.memory
    count = 0
    started = time.perf_counter()
    while count < max_instructions:
        pc = sim.pc
        instr = _uncached_decode(memory.fetch(pc))
        effects = step(instr, pc, sim.read_reg(instr.rs1),
                       sim.read_reg(instr.rs2), memory.load)
        if effects.mem_write is not None:
            mw = effects.mem_write
            memory.store(mw.addr, mw.data, mw.width)
        if effects.rd is not None:
            sim.write_reg(effects.rd, effects.rd_data)
        sim.pc = effects.next_pc
        count += 1
        if effects.halt:
            break
    elapsed = time.perf_counter() - started
    return count / elapsed / 1e6


def _fast_mips(program, runner):
    started = time.perf_counter()
    result = runner(program, max_instructions=3_000_000)
    elapsed = time.perf_counter() - started
    assert result.halted_by == "ecall" and result.exit_code == _FAST_ITERS
    return result.instructions / elapsed / 1e6


def _soc_idle_mips(program):
    sim = GoldenSim(program, soc=SocSpec())
    started = time.perf_counter()
    result = sim.run(max_instructions=3_000_000)
    elapsed = time.perf_counter() - started
    assert result.halted_by == "poweroff" and result.exit_code == _FAST_ITERS
    return result.instructions / elapsed / 1e6


def test_bench_sim_throughput(benchmark, bench_artifact):
    fast_prog = assemble(_LOOP.format(n=_FAST_ITERS))
    idle_prog = assemble(_LOOP_SOC_IDLE.format(n=_FAST_ITERS))
    naive_prog = assemble(_LOOP.format(n=_NAIVE_INSTRUCTIONS))

    def report():
        return {
            "naive_mips": _naive_mips(naive_prog, _NAIVE_INSTRUCTIONS),
            "golden_mips": _fast_mips(fast_prog, run_program),
            "golden_soc_idle_mips": _soc_idle_mips(idle_prog),
            "serv_mips": _fast_mips(fast_prog, run_program_serv),
        }

    stats = benchmark.pedantic(report, rounds=1, iterations=1)
    speedup = stats["golden_mips"] / stats["naive_mips"]
    idle_ratio = stats["golden_soc_idle_mips"] / stats["golden_mips"]
    print("\n=== Simulator throughput (1.6M-instruction loop) ===")
    print(f"seed-style interpreter:   {stats['naive_mips']:6.3f} MIPS")
    print(f"golden ISS fast path:     {stats['golden_mips']:6.3f} MIPS "
          f"({speedup:.1f}x)")
    print(f"golden + idle interrupts: {stats['golden_soc_idle_mips']:6.3f} "
          f"MIPS ({100 * idle_ratio:.1f}% of fast path)")
    print(f"serv timing model:        {stats['serv_mips']:6.3f} MIPS")
    bench_artifact("sim_throughput", {
        **stats,
        "decoded_cache_speedup": speedup,
        "soc_idle_ratio": idle_ratio,
    })
    assert speedup >= 5.0, (
        f"decoded-op cache speedup regressed: {speedup:.2f}x < 5x")
    assert stats["serv_mips"] >= 2.0 * stats["naive_mips"]
    # PR 3 acceptance: <10% regression with interrupts enabled-but-idle.
    # Gate with slack for shared-runner noise; the measured overhead of
    # the single fire-index comparison is ~0-3%.
    assert idle_ratio >= 0.85, (
        f"idle interrupt support cost too much fast-path throughput: "
        f"{100 * (1 - idle_ratio):.1f}% > 15%")
