"""Figure 7: average NAND2-equivalent gate count across the sweep."""

from repro.core.metrics import saving
from repro.data import paper


def test_bench_fig7_area(benchmark, rissp_reports, rv32e_report,
                         serv_report, paper_subset_reports):
    def area_table():
        return {name: rep.avg_area_ge
                for name, rep in rissp_reports.items()}

    table = benchmark.pedantic(area_table, rounds=1, iterations=1)
    base = rv32e_report.avg_area_ge
    print("\n=== Figure 7: average area (NAND2-eq gates) ===")
    savings = {}
    for name in sorted(table):
        savings[name] = saving(table[name], base)
        print(f"{name:<16} {table[name]:>8.0f} GE   saving "
              f"{savings[name]:5.1f}%")
    print(f"{'RISSP-RV32E':<16} {base:>8.0f} GE   (paper ~3200)")
    print(f"{'Serv':<16} {serv_report.avg_area_ge:>8.0f} GE")
    print(f"saving range: {min(savings.values()):.0f}%-"
          f"{max(savings.values()):.0f}% "
          f"(paper {paper.AREA_SAVING_RANGE_PCT})")
    ratio = (paper_subset_reports['xgboost'].avg_area_ge
             / serv_report.avg_area_ge)
    print(f"xgboost (paper Table 3 subset) vs Serv: {ratio:.2f}x (paper "
          f"{paper.XGBOOST_VS_SERV_AREA}x)")
    assert all(s > 0 for s in savings.values())
    assert max(savings.values()) < 60
    assert 1.05 < ratio < 1.45
