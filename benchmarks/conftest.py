"""Shared, session-scoped artifacts for the per-figure benchmarks."""

import json
import os
import pathlib
import platform

import pytest

from repro.core import RisspFlow, sweep_all
from repro.synth import synthesize_serv


def write_bench_artifact(name: str, payload: dict) -> pathlib.Path:
    """Write one machine-readable ``BENCH_<name>.json`` benchmark artifact.

    The output directory is ``$REPRO_BENCH_DIR`` (what CI sets and
    uploads, so the perf trajectory is tracked across PRs) or
    ``benchmarks/artifacts/`` for local runs.  Each artifact carries the
    host fingerprint — absolute numbers are only comparable within one
    runner generation; the in-process speedup *ratios* are the gated
    quantities.
    """
    out_dir = pathlib.Path(os.environ.get(
        "REPRO_BENCH_DIR", pathlib.Path(__file__).parent / "artifacts"))
    out_dir.mkdir(parents=True, exist_ok=True)
    document = {
        "bench": name,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "metrics": payload,
    }
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture(scope="session")
def bench_artifact():
    """The artifact writer, as a fixture so tests need no conftest import."""
    return write_bench_artifact


@pytest.fixture(scope="session")
def flow():
    return RisspFlow()


@pytest.fixture(scope="session")
def sweeps():
    """Figure 5 flag sweep over all 25 workloads (compile-only)."""
    return sweep_all()


@pytest.fixture(scope="session")
def rissp_reports(flow, sweeps):
    """Synthesized RISSP per application from its -O2 subset."""
    reports = {}
    for name, sweep in sweeps.items():
        profile = sweep.profiles["O2"]
        result = flow.generate_for_subset(name, list(profile.mnemonics))
        reports[name] = result.synth
    return reports


@pytest.fixture(scope="session")
def rv32e_report(flow):
    return flow.full_isa_baseline().synth


@pytest.fixture(scope="session")
def serv_report():
    return synthesize_serv()


@pytest.fixture(scope="session")
def paper_subset_reports(flow):
    """Extreme-edge RISSPs built from the paper's own Table 3 subsets,
    for apples-to-apples Figure 7/10 comparisons (our compiler's subsets
    are slightly larger than GCC's)."""
    from repro.data import paper
    out = {}
    for name in ("armpit", "xgboost", "af_detect"):
        result = flow.generate_for_subset(
            name, list(paper.TABLE3_SUBSETS[name]))
        out[name] = result.synth
    return out
