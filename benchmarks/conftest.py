"""Shared, session-scoped artifacts for the per-figure benchmarks."""

import pytest

from repro.core import RisspFlow, sweep_all
from repro.core.bench_schema import write_bench_artifact
from repro.synth import synthesize_serv

# write_bench_artifact moved to repro.core.bench_schema (PR 4) so it can
# schema-validate every document before writing — each artifact carries
# the host fingerprint; absolute numbers are only comparable within one
# runner generation, the in-process speedup *ratios* are the gated
# quantities — and so tests can re-validate whatever is on disk without
# importing this conftest.


@pytest.fixture(scope="session")
def bench_artifact():
    """The artifact writer, as a fixture so tests need no conftest import."""
    return write_bench_artifact


@pytest.fixture(scope="session")
def flow():
    return RisspFlow()


@pytest.fixture(scope="session")
def sweeps():
    """Figure 5 flag sweep over all 25 workloads (compile-only)."""
    return sweep_all()


@pytest.fixture(scope="session")
def rissp_reports(flow, sweeps):
    """Synthesized RISSP per application from its -O2 subset."""
    reports = {}
    for name, sweep in sweeps.items():
        profile = sweep.profiles["O2"]
        result = flow.generate_for_subset(name, list(profile.mnemonics))
        reports[name] = result.synth
    return reports


@pytest.fixture(scope="session")
def rv32e_report(flow):
    return flow.full_isa_baseline().synth


@pytest.fixture(scope="session")
def serv_report():
    return synthesize_serv()


@pytest.fixture(scope="session")
def paper_subset_reports(flow):
    """Extreme-edge RISSPs built from the paper's own Table 3 subsets,
    for apples-to-apples Figure 7/10 comparisons (our compiler's subsets
    are slightly larger than GCC's)."""
    from repro.data import paper
    out = {}
    for name in ("armpit", "xgboost", "af_detect"):
        result = flow.generate_for_subset(
            name, list(paper.TABLE3_SUBSETS[name]))
        out[name] = result.synth
    return out
