"""Figure 9: energy per instruction; RISSPs ~40x better than Serv."""

from repro.core.metrics import energy_per_instruction_nj
from repro.data import paper
from repro.synth import SERV_CPI


def test_bench_fig9_epi(benchmark, rissp_reports, rv32e_report,
                        serv_report):
    def epi_table():
        return {name: energy_per_instruction_nj(rep, 1.0)
                for name, rep in rissp_reports.items()}

    table = benchmark.pedantic(epi_table, rounds=1, iterations=1)
    serv_epi = energy_per_instruction_nj(serv_report, SERV_CPI)
    rv32e_epi = energy_per_instruction_nj(rv32e_report, 1.0)
    print("\n=== Figure 9: energy per instruction (nJ) ===")
    ratios = []
    for name in sorted(table):
        ratios.append(serv_epi / table[name])
        print(f"{name:<16} {table[name]:>7.3f} nJ  ({ratios[-1]:5.1f}x "
              f"better than Serv)")
    print(f"{'RISSP-RV32E':<16} {rv32e_epi:>7.3f} nJ "
          f"({serv_epi / rv32e_epi:5.1f}x; paper ~{paper.EPI_RATIO_RV32E}x)")
    print(f"{'Serv':<16} {serv_epi:>7.3f} nJ (CPI {SERV_CPI})")
    avg_ratio = sum(ratios) / len(ratios)
    print(f"average RISSP advantage: {avg_ratio:.0f}x (paper "
          f"~{paper.EPI_RATIO_RISSP_AVG}x)")
    assert 25 < serv_epi / rv32e_epi < 50
    assert 30 < avg_ratio < 70
