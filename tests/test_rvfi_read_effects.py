"""Regression tests for RVFI read-effect parity between RTL and golden sims.

The seed recorded ``mem_rmask=0b1111`` and the raw full memory word for
*every* RTL load — so ``cosimulate`` could not compare the read side of the
memory interface at all.  These tests pin the fixed convention (true byte
address, ``(1 << width) - 1`` lane mask, extended sub-word value), prove
cosimulation now detects injected read corruption, and cover the
ebreak/ecall halt-cause plumbing.
"""

import pytest

from repro.isa import INSTRUCTIONS, assemble
from repro.rtl import RisspSim, build_rissp, cosimulate
from repro.sim import GoldenSim, abi_initial_regs, run_program
from repro.verify import check_trace

_SUBWORD_LOADS = """.text
main:
    la a1, testdata
    lb a0, 0(a1)
    lb a2, 1(a1)
    lbu a3, 2(a1)
    lbu a4, 3(a1)
    lh a0, 4(a1)
    lhu a2, 6(a1)
    lw a3, 8(a1)
    sb a0, 12(a1)
    sh a2, 14(a1)
    lb a0, 12(a1)
    ret
.data
testdata:
    .word 0x80FF7F01, 0xFFFE8002, 0xDEADBEEF, 0
"""


@pytest.fixture(scope="module")
def full_core():
    return build_rissp([d.mnemonic for d in INSTRUCTIONS])


def test_subword_load_rvfi_fields_match_golden(full_core):
    prog = assemble(_SUBWORD_LOADS)
    rtl_trace = RisspSim(full_core, prog, trace=True).run(10_000).trace
    gold_trace = GoldenSim(prog, trace=True).run(10_000).trace
    assert len(rtl_trace) == len(gold_trace)
    for rtl_rec, gold_rec in zip(rtl_trace, gold_trace):
        for name in ("insn", "mem_addr", "mem_rmask", "mem_rdata",
                     "mem_wmask", "mem_wdata", "rd_addr", "rd_wdata"):
            assert getattr(rtl_rec, name) == getattr(gold_rec, name), \
                (f"order={rtl_rec.order} {name}: rtl="
                 f"{getattr(rtl_rec, name):#x} "
                 f"gold={getattr(gold_rec, name):#x}")


def test_subword_load_rmask_is_lane_width(full_core):
    prog = assemble(_SUBWORD_LOADS)
    trace = RisspSim(full_core, prog, trace=True).run(10_000).trace
    rmasks = [r.mem_rmask for r in trace if r.mem_rmask]
    assert rmasks == [0b1, 0b1, 0b1, 0b1, 0b11, 0b11, 0b1111, 0b1]


def test_rvfi_checker_accepts_rtl_subword_trace(full_core):
    prog = assemble(_SUBWORD_LOADS)
    result = RisspSim(full_core, prog, trace=True).run(10_000)
    report = check_trace(result.trace, initial_regs=abi_initial_regs())
    assert report.passed, report.errors


def test_cosim_clean_on_subword_loads(full_core):
    assert cosimulate(full_core, assemble(_SUBWORD_LOADS)) is None


def test_cosim_shares_golden_trace(full_core):
    prog = assemble(_SUBWORD_LOADS)
    golden_trace = []
    assert cosimulate(full_core, prog, golden_trace_out=golden_trace) is None
    report = check_trace(golden_trace, initial_regs=abi_initial_regs())
    assert report.passed, report.errors


def test_cosim_reports_limit_exhaustion(full_core):
    """A matching prefix that never halts must not read as verified."""
    prog = assemble(".text\nmain:\n j main\n")
    mismatch = cosimulate(full_core, prog, max_instructions=100)
    assert mismatch is not None and mismatch.field == "limit"
    assert mismatch.index == 100


def test_cosim_detects_injected_read_corruption(full_core, monkeypatch):
    """Flipping one bit of a recorded mem_rdata must surface as a mismatch
    in the read-side fields — the seed comparison never looked at them."""
    original = RisspSim._cycle

    def corrupted(self, order, sink=None):
        halted, reason = original(self, order, sink)
        if sink is not None and len(sink) and sink.peek(-1, "mem_rmask"):
            sink.poke(-1, "mem_rdata", sink.peek(-1, "mem_rdata") ^ 1)
        return halted, reason

    monkeypatch.setattr(RisspSim, "_cycle", corrupted)
    # backend="compiled" pins the per-cycle path the patched _cycle rides;
    # the fused-loop compare path gets the same treatment in
    # tests/test_rtl_fused_diff.py.
    mismatch = cosimulate(full_core, assemble(_SUBWORD_LOADS),
                          backend="compiled")
    assert mismatch is not None and mismatch.field == "mem_rdata"
    assert mismatch.rtl_value == mismatch.golden_value ^ 1


def test_cosim_detects_injected_read_mask_corruption(full_core, monkeypatch):
    original = RisspSim._cycle

    def corrupted(self, order, sink=None):
        halted, reason = original(self, order, sink)
        if sink is not None and len(sink) and \
                sink.peek(-1, "mem_rmask") == 0b1:
            sink.poke(-1, "mem_rmask", 0b1111)
        return halted, reason

    monkeypatch.setattr(RisspSim, "_cycle", corrupted)
    mismatch = cosimulate(full_core, assemble(_SUBWORD_LOADS),
                          backend="compiled")
    assert mismatch is not None and mismatch.field == "mem_rmask"


_EBREAK = ".text\nmain:\n li a0, 77\n ebreak\n"


def test_golden_reports_ebreak():
    r = run_program(assemble(_EBREAK))
    assert r.halted_by == "ebreak" and r.exit_code == 77


def test_golden_traced_reports_ebreak():
    r = run_program(assemble(_EBREAK), trace=True)
    assert r.halted_by == "ebreak" and r.exit_code == 77


def test_rissp_run_reports_ebreak(full_core):
    r = RisspSim(full_core, assemble(_EBREAK)).run(1_000)
    assert r.halted_by == "ebreak" and r.exit_code == 77


def test_rissp_run_reports_ecall(full_core):
    r = RisspSim(full_core, assemble(".text\nmain:\n li a0, 5\n ret\n")) \
        .run(1_000)
    assert r.halted_by == "ecall" and r.exit_code == 5


def test_serv_reports_ebreak():
    from repro.sim import run_program_serv
    r = run_program_serv(assemble(_EBREAK))
    assert r.halted_by == "ebreak" and r.exit_code == 77
