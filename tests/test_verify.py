"""Verification substrate tests: mutation, RISCOF, RVFI, failure injection."""

import pytest

from repro.isa import INSTRUCTIONS, assemble
from repro.rtl import RisspSim, build_block, build_rissp
from repro.rtl.ir import Const, Module
from repro.verify import (
    check_trace, run_compliance, run_mutation_campaign, run_testbench,
    vectors_for,
)


def test_vectors_cover_all_instructions():
    for d in INSTRUCTIONS:
        assert len(vectors_for(d.mnemonic)) >= 1


def test_vector_counts_substantial():
    assert len(vectors_for("add")) > 90
    assert len(vectors_for("beq")) > 100


@pytest.mark.parametrize("mnemonic", ["add", "beq", "lw", "sb", "jalr"])
def test_mutation_coverage_full(mnemonic):
    report = run_mutation_campaign(build_block(mnemonic), limit=30)
    assert report.total == 30
    assert report.coverage == 1.0, report.survivors[:3]


def test_testbench_catches_injected_bug():
    """Failure injection: corrupt a block's datapath; testbench must fail."""
    block = build_block("add")
    # swap the adder output for a subtractor: rebuild rdest_data
    from repro.rtl.ir import Binary, Op
    expr = block.assigns["rdest_data"]
    block.assigns["rdest_data"] = Binary(Op.SUB, expr.a, expr.b)
    result = run_testbench(block)
    assert not result.passed


def test_formal_catches_wrong_decode():
    from repro.verify import check_block
    block = build_block("xor")
    # corrupt rs2 address decode
    block.assigns["rs2_addr"] = Const(3, 4)
    report = check_block(block)
    assert not report.proven


def test_riscof_compliance_full_core():
    core = build_rissp([d.mnemonic for d in INSTRUCTIONS])
    report = run_compliance(core, mnemonics=["add", "sub", "lw", "sb",
                                             "beq", "sra", "lui", "jalr"])
    assert report.compliant and report.tests_run == 8


def test_rvfi_checker_accepts_good_trace():
    core = build_rissp([d.mnemonic for d in INSTRUCTIONS])
    prog = assemble(""".text
main:
    li a1, 10
    li a2, 32
    add a0, a1, a2
    sw a0, 128(zero)
    lw a3, 128(zero)
    beq a0, a3, ok
    li a0, 0
ok:
    ret
""")
    sim = RisspSim(core, prog, trace=True)
    result = sim.run()
    report = check_trace(result.trace,
                         initial_regs={2: 0x20000 - 16, 1: 0xFFF0})
    assert report.passed, report.errors


def test_rvfi_checker_rejects_corrupted_trace():
    core = build_rissp([d.mnemonic for d in INSTRUCTIONS])
    prog = assemble(".text\nmain:\n li a0, 3\n addi a0, a0, 4\n ret\n")
    sim = RisspSim(core, prog, trace=True)
    result = sim.run()
    import dataclasses
    bad = list(result.trace)
    bad[1] = dataclasses.replace(bad[1], rd_wdata=999)
    report = check_trace(bad, initial_regs={2: 0x20000 - 16, 1: 0xFFF0})
    assert not report.passed


def test_rvfi_checker_rejects_pc_gap():
    core = build_rissp([d.mnemonic for d in INSTRUCTIONS])
    prog = assemble(".text\nmain:\n nop\n nop\n ret\n")
    result = RisspSim(core, prog, trace=True).run()
    import dataclasses
    bad = list(result.trace)
    bad[1] = dataclasses.replace(bad[1], pc_rdata=0x40)
    report = check_trace(bad, initial_regs={2: 0x20000 - 16, 1: 0xFFF0})
    assert not report.passed
