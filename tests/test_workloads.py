"""Workload correctness: golden-ISS results vs Python references."""

import pytest

from repro.compiler import compile_to_program
from repro.sim import run_program
from repro.workloads import ALL_NAMES, EMBENCH_NAMES, SOC_NAMES, WORKLOADS


@pytest.fixture(scope="module")
def results():
    out = {}
    for name in ALL_NAMES:
        res = compile_to_program(WORKLOADS[name].source, "O2")
        out[name] = run_program(res.program, max_instructions=3_000_000)
    return out


def test_registry_complete():
    assert len(EMBENCH_NAMES) == 22
    assert len(ALL_NAMES) == 25
    assert len(SOC_NAMES) == 4
    # PR 5: the interrupt-driven images are pure MicroC (CSR/wfi
    # intrinsics + __interrupt ISRs); the legacy pair stays assembly.
    assert WORKLOADS["af_detect_irq"].lang == "c"
    assert WORKLOADS["sensor_streaming"].lang == "c"
    assert WORKLOADS["label_refresh"].lang == "asm"
    assert WORKLOADS["uart_selftest"].lang == "asm"
    assert all(WORKLOADS[n].soc_spec is not None for n in SOC_NAMES)


def test_all_workloads_halt(results):
    for name, r in results.items():
        assert r.halted_by == "ecall", name


def test_primecount_reference(results):
    assert results["primecount"].exit_code == 78    # pi(400)


def test_crc32_reference(results):
    data = bytes((i * 7 + 3) & 0xFF for i in range(64))
    crc = 0xFFFFFFFF
    for byte in data:
        crc ^= byte
        for _ in range(8):
            crc = (crc >> 1) ^ (0xEDB88320 & (-(crc & 1) & 0xFFFFFFFF))
    want = (~crc & 0xFFFFFFFF) & 0x7FFFFFFF
    assert results["crc32"].exit_code == want


def test_matmult_reference(results):
    a = [(i % 7) - 3 for i in range(256)]
    b = [(i % 5) - 2 for i in range(256)]
    c = [0] * 256
    for i in range(16):
        for j in range(16):
            c[i * 16 + j] = sum(a[i * 16 + k] * b[k * 16 + j]
                                for k in range(16))
    check = 0
    for i in range(256):
        check ^= (c[i] + i) & 0xFFFFFFFF
    assert results["matmult-int"].exit_code == check & 0x7FFFFFFF


def test_wikisort_produces_sorted_output(results):
    # top bit set iff sorted
    assert results["wikisort"].exit_code & 0x40000000


def test_slre_matches(results):
    assert results["slre"].exit_code == 320


def test_tarfind_locates_record(results):
    # record "data3" is at index 1; found_at+1=2, checked=2
    assert results["tarfind"].exit_code == 202


def test_xgboost_classification_counts(results):
    positives = results["xgboost"].exit_code // 256
    patients = results["xgboost"].exit_code % 256
    assert patients == 8 and 0 <= positives <= 8


def test_af_detect_finds_peaks(results):
    code = results["af_detect"].exit_code
    num_peaks = (code // 64) % 64
    assert num_peaks >= 8     # the synthetic trace has ~10 beats


def test_armpit_scores_in_range(results):
    assert 0 < results["armpit"].exit_code < 0x7FFFFFFF


@pytest.mark.parametrize("name", ["crc32", "statemate", "ud"])
def test_o0_matches_o2(name, results):
    res = compile_to_program(WORKLOADS[name].source, "O0")
    r0 = run_program(res.program, max_instructions=8_000_000)
    assert r0.exit_code == results[name].exit_code


@pytest.fixture(scope="module")
def soc_results():
    from repro.workloads import build_program
    out = {}
    for name in SOC_NAMES:
        workload = WORKLOADS[name]
        out[name] = run_program(build_program(workload),
                                max_instructions=3_000_000,
                                soc=workload.soc_spec)
    return out


def test_soc_workloads_power_off(soc_results):
    for name, r in soc_results.items():
        assert r.halted_by == "poweroff", name


def test_af_detect_irq_flags_the_irregular_rhythm(soc_results):
    code = soc_results["af_detect_irq"].exit_code
    af, peaks, irregular = code >> 12, (code >> 6) & 63, code & 63
    assert af == 1 and peaks >= 8 and irregular >= peaks // 2


def test_af_detect_irq_source_is_pure_c():
    # The PR 5 acceptance bar: no hand-written assembly runtime left in
    # the interrupt-driven firmware — intrinsics all the way down.
    source = WORKLOADS["af_detect_irq"].source
    assert "__interrupt" in source and "__wfi" in source
    assert ".text" not in source and "mret" not in source


def test_sensor_streaming_consumes_the_stream(soc_results):
    from repro.workloads.soc_apps import STREAM_NSAMP
    code = soc_results["sensor_streaming"].exit_code
    nticks, ndata = code >> 24, (code >> 16) & 0xFF
    assert nticks > 0 and 0 < ndata <= STREAM_NSAMP


def test_label_refresh_reports_all_refreshes(soc_results):
    from repro.workloads.soc_apps import LABEL_REFRESHES
    assert soc_results["label_refresh"].exit_code >> 16 == LABEL_REFRESHES


def test_uart_selftest_scores_full_marks(soc_results):
    assert soc_results["uart_selftest"].exit_code == 6
