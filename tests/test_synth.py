"""Synthesis flow tests: lowering equivalence, optimization, timing, power."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rtl import Module, RtlSim, build_rissp, const, mux
from repro.synth import (
    FLEXIC_GEN3, GateType, NetSim, analyze_timing, eval_words,
    lower_module, mapped_stats, synthesize, synthesize_serv,
)

u32 = st.integers(0, 0xFFFFFFFF)


def datapath_module():
    m = Module("dp")
    a = m.input("a", 32)
    b = m.input("b", 32)
    m.assign(m.output("add", 32), a + b)
    m.assign(m.output("sub", 32), a - b)
    m.assign(m.output("ult", 1), a.ult(b))
    m.assign(m.output("slt", 1), a.slt(b))
    m.assign(m.output("eq", 1), a.eq(b))
    m.assign(m.output("shl", 32), a.shl(b.slice(4, 0)))
    m.assign(m.output("shr", 32), a.lshr(b.slice(4, 0)))
    m.assign(m.output("sar", 32), a.ashr(b.slice(4, 0)))
    m.assign(m.output("mx", 32), mux(a.bit(0), a & b, a | b))
    return m


@settings(max_examples=40, deadline=None)
@given(a=u32, b=u32)
def test_gate_lowering_equivalence(a, b):
    """The lowered netlist computes exactly what the RTL eval computes."""
    m = datapath_module()
    design = lower_module(m)
    rtl = RtlSim(m)
    rtl.set_inputs(a=a, b=b)
    rtl.eval_comb()
    words = eval_words(design.netlist, {"a": a, "b": b},
                       {"a": 32, "b": 32})
    for out in ("add", "sub", "ult", "slt", "eq", "shl", "shr", "sar",
                "mx"):
        assert words.get(out, 0) == rtl.get(out), out


def test_structural_hashing_shares_logic():
    m = Module("s")
    a = m.input("a", 32)
    b = m.input("b", 32)
    m.assign(m.output("x", 32), a + b)
    m.assign(m.output("y", 32), a + b)   # identical expression
    single = Module("t")
    a2 = single.input("a", 32)
    b2 = single.input("b", 32)
    single.assign(single.output("x", 32), a2 + b2)
    both = lower_module(m).netlist.counts()
    one = lower_module(single).netlist.counts()
    assert both == one   # second adder strash-merged away


def test_constant_folding_removes_logic():
    m = Module("c")
    a = m.input("a", 32)
    m.assign(m.output("o", 32), (a & const(0, 32)) | (a ^ a))
    net = lower_module(m).netlist
    assert sum(net.counts().values()) == 0   # folds to constant 0


def test_dead_sweep():
    m = Module("d")
    a = m.input("a", 32)
    m.assign(m.wire("unused", 32), a + const(12345, 32))
    m.assign(m.output("o", 32), a)
    net = lower_module(m, sweep=True).netlist
    assert sum(net.counts().values()) == 0


def test_timing_monotone_with_depth():
    shallow = Module("sh")
    a = shallow.input("a", 32)
    shallow.assign(shallow.output("o", 32), a + const(1, 32))
    deep = Module("dp")
    b = deep.input("a", 32)
    x = b
    for _ in range(4):
        x = x + const(1, 32)
    deep.assign(deep.output("o", 32), x)
    t1 = analyze_timing(lower_module(shallow).netlist, FLEXIC_GEN3)
    t2 = analyze_timing(lower_module(deep).netlist, FLEXIC_GEN3)
    assert t2.critical_path_units > t1.critical_path_units


def test_calibration_anchors():
    """The techlib reproduces the paper's RISSP-RV32E / Serv anchors."""
    from repro.isa import INSTRUCTIONS
    rv = synthesize(build_rissp([d.mnemonic for d in INSTRUCTIONS],
                                name="rissp_rv32e"), seed="rv32e")
    assert rv.fmax_khz == 1700
    assert 3000 < rv.area_ge < 3400
    assert 0.05 < rv.ff_area_fraction < 0.07
    assert 0.8 < rv.power_at_fmax.total_mw < 1.0
    serv = synthesize_serv()
    assert serv.fmax_khz == 2050
    assert 0.55 < serv.ff_area_fraction < 0.65
    ratio = serv.power_at_fmax.total_mw / rv.power_at_fmax.total_mw
    assert 1.3 < ratio < 1.55


def test_subset_smaller_than_full():
    from repro.isa import INSTRUCTIONS
    full = synthesize(build_rissp([d.mnemonic for d in INSTRUCTIONS]),
                      seed="full")
    small = synthesize(build_rissp(["addi", "lw", "sw", "jal", "beq",
                                    "ecall"]), seed="small")
    assert small.area_ge < full.area_ge
    assert small.avg_power_mw < full.avg_power_mw


def test_mapped_stats_compress_and_or():
    m = Module("ao")
    s0 = m.input("s0", 1)
    s1 = m.input("s1", 1)
    a = m.input("a", 1)
    b = m.input("b", 1)
    m.assign(m.output("o", 1), (a & s0) | (b & s1))
    design = lower_module(m)
    stats = mapped_stats(design.netlist, FLEXIC_GEN3)
    assert stats.cell_counts.get("AO22") == 1


def test_netsim_dff_state():
    from repro.synth import Netlist
    net = Netlist()
    d = net.add_input("d")
    ff = net.add_dff("q", init=1)
    net.connect_dff(ff, d)
    net.set_output("q", ff)
    sim = NetSim(net)
    out = sim.eval_comb({"d": 0})
    assert out["q"] == 1     # init value
    sim.tick()
    out = sim.eval_comb({"d": 0})
    assert out["q"] == 0
