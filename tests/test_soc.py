"""Machine-mode trap/interrupt subsystem + MMIO peripheral bus (PR 3).

Covers the full cross-layer story: CSR semantics, trap entry/return,
timer interrupts and wfi fast-forward on the golden ISS (fast and
recorded paths), the Serv model, and the RTL harness; MMIO device
behaviour and its interaction with the decoded-op cache; and lock-step
cosimulation of trap/interrupt timing on both RTL backends — including a
failure-injection check that the cosim actually gates the trap path.
"""

import pytest

from repro.isa import INSTRUCTIONS, assemble
from repro.isa.csrs import (
    CAUSE_BREAKPOINT,
    CAUSE_ECALL_M,
    CAUSE_ILLEGAL_INSTRUCTION,
    CAUSE_MACHINE_TIMER,
    MCAUSE,
    MEPC,
    MIP,
    MSTATUS,
    MSTATUS_MIE,
    MTVEC,
)
from repro.rtl import build_rissp
from repro.rtl.core_sim import RisspSim, cosimulate
from repro.sim import CsrFile, GoldenSim, ServSim, SimulationError
from repro.sim.golden import abi_initial_regs
from repro.sim.memory import MemoryError_
from repro.soc import SENSOR_BASE, Soc, SocSpec, TIMER_BASE
from repro.verify.rvfi import check_trace

FULL_TRAP_SUBSET = [d.mnemonic for d in INSTRUCTIONS] + ["mret"]


@pytest.fixture(scope="module")
def trap_core():
    return build_rissp(FULL_TRAP_SUBSET)


#: Timer-interrupt workload: five ISR-counted periods paced through
#: mtimecmp re-arming, wfi duty-cycling in between, poweroff at the end.
TIMER_LOOP = """
.equ PWR,      0x40000
.equ MTIME,    0x40100
.equ MTIMECMP, 0x40108
.text
main:
    la t0, handler
    csrw mtvec, t0
    li t0, MTIMECMP
    li t1, 100
    sw t1, 0(t0)
    sw x0, 4(t0)
    li t0, 128
    csrw mie, t0
    csrsi mstatus, 8
    li s0, 0
loop:
    wfi
    li t1, 5
    beq s0, t1, done
    j loop
done:
    li t0, PWR
    sw s0, 0(t0)
hang:
    j hang
handler:
    addi s0, s0, 1
    li t0, MTIME
    lw t1, 0(t0)
    addi t1, t1, 100
    li t0, MTIMECMP
    sw t1, 0(t0)
    mret
"""


# ------------------------------------------------------------- CSR file unit


def test_csr_warl_masks():
    csr = CsrFile()
    csr.write(MSTATUS, 0xFFFFFFFF)
    assert csr.mstatus == 0x88          # only MIE|MPIE implemented
    csr.write(MTVEC, 0x1003)
    assert csr.mtvec == 0x1000          # direct mode, low bits forced 0
    csr.write(MIP, 0xFFFFFFFF)
    assert csr.mip == 0                 # read-only: MTIP wired from timer
    csr.write(MEPC, 0x123)
    assert csr.mepc == 0x120


def test_trap_enter_stacks_and_mret_unstacks_mie():
    csr = CsrFile()
    csr.write(MTVEC, 0x400)
    csr.mstatus = MSTATUS_MIE
    target = csr.trap_enter(CAUSE_ECALL_M, 0x84)
    assert target == 0x400
    assert csr.mepc == 0x84 and csr.mcause == CAUSE_ECALL_M
    assert not csr.mstatus & MSTATUS_MIE       # masked inside the handler
    assert csr.do_mret() == 0x84
    assert csr.mstatus & MSTATUS_MIE           # restored on return


# ----------------------------------------------------- golden ISS trap paths


def test_legacy_halt_convention_unchanged():
    prog = assemble(".text\nmain:\n    li a0, 7\n    ecall\n")
    result = GoldenSim(prog).run()
    assert result.halted_by == "ecall" and result.exit_code == 7


def test_ecall_traps_once_handler_installed():
    prog = assemble("""
.text
main:
    la t0, handler
    csrw mtvec, t0
    li a0, 1
    ecall                 # traps, handler rewrites a0 and returns
    ebreak                # also traps; handler halts via second path
handler:
    csrr t0, mcause
    li t1, 3
    beq t0, t1, stop
    li a0, 42
    csrr t0, mepc
    addi t0, t0, 4
    csrw mepc, t0
    mret
stop:
    csrw mtvec, x0        # uninstall: next ebreak really halts
    ebreak
""")
    result = GoldenSim(prog).run()
    assert result.halted_by == "ebreak"
    assert result.exit_code == 42


def test_illegal_instruction_traps_with_mtval():
    prog = assemble("""
.text
main:
    la t0, handler
    csrw mtvec, t0
    la t1, bad
    jr t1
handler:
    csrr a0, mcause
    csrw mtvec, x0
    ecall
bad:
    .word 0xFFFFFFFF
""")
    sim = GoldenSim(prog)
    result = sim.run()
    assert result.halted_by == "ecall"
    assert result.exit_code == CAUSE_ILLEGAL_INSTRUCTION
    assert sim.csr.mtval == 0xFFFFFFFF


def test_illegal_instruction_without_handler_still_raises():
    prog = assemble(".text\nmain:\n    .word 0xFFFFFFFF\n")
    with pytest.raises(SimulationError):
        GoldenSim(prog).run()


def test_timer_interrupts_fast_and_recorded_paths_agree():
    prog = assemble(TIMER_LOOP)
    fast = GoldenSim(prog, soc=SocSpec()).run()
    recorded_sim = GoldenSim(prog, soc=SocSpec(), trace=True)
    recorded = recorded_sim.run()
    assert fast.halted_by == recorded.halted_by == "poweroff"
    assert fast.exit_code == recorded.exit_code == 5
    assert fast.instructions == recorded.instructions
    intr_rows = [r for r in recorded.trace if r.intr]
    assert len(intr_rows) == 5
    handler = prog.symbol("handler")
    assert all(r.pc_rdata == handler for r in intr_rows)


def test_wfi_fast_forwards_the_clock():
    prog = assemble(TIMER_LOOP)
    sim = GoldenSim(prog, soc=SocSpec())
    result = sim.run()
    # 5 x 100-tick periods elapse while only ~100 instructions retire —
    # wfi skipped the idle time instead of spinning through it.
    assert sim.soc.timer.mtime >= 500
    assert result.instructions < 150


def test_interrupt_trace_passes_rvfi_checker():
    prog = assemble(TIMER_LOOP)
    result = GoldenSim(prog, soc=SocSpec(), trace=True).run()
    report = check_trace(result.trace, initial_regs=abi_initial_regs())
    assert report.passed, report.errors


def test_rvfi_checker_accepts_mtval_reset_by_interrupt_entry():
    """Regression: an illegal-instruction trap sets mtval, a later timer
    interrupt resets it to 0; the shadow-CSR model must track the reset
    or it flags the handler's mtval read on a *correct* trace."""
    prog = assemble("""
.equ PWR,      0x40000
.equ MTIMECMP, 0x40108
.text
main:
    la t0, handler
    csrw mtvec, t0
    la t1, bad
    jr t1                 # illegal trap: mtval <- the junk word
resume:
    li t0, MTIMECMP
    li t1, 200
    sw t1, 0(t0)
    sw x0, 4(t0)
    li t0, 128
    csrw mie, t0
    csrsi mstatus, 8
wait:
    wfi                   # timer interrupt: mtval <- 0
    j wait
handler:
    csrr t1, mtval        # read back: junk word, then 0
    csrr t0, mcause
    bgez t0, fixup
    li t0, PWR
    sw t1, 0(t0)          # power off with the mtval the interrupt saw
fixup:
    la t0, resume
    csrw mepc, t0
    mret
bad:
    .word 0xFFFFFFFF
""")
    result = GoldenSim(prog, soc=SocSpec(), trace=True).run()
    assert result.halted_by == "poweroff" and result.exit_code == 0
    report = check_trace(result.trace, initial_regs=abi_initial_regs())
    assert report.passed, report.errors


def test_rvfi_checker_does_not_learn_blind_rmw_csr_writes():
    """Regression: csrrs/csrrc with rd=x0 on a CSR whose value was never
    observed must invalidate the shadow entry, not learn old|src with
    old guessed as 0 (mstatus holds an invisible MPIE after mret)."""
    prog = assemble("""
.text
main:
    la t0, handler
    csrw mtvec, t0
    ecall                 # trap + mret leaves MPIE set in mstatus
    csrsi mstatus, 8      # blind RMW: rd=x0, old mstatus unobserved
    csrr a0, mstatus      # real value 0x88; a naive shadow expects 0x8
    csrw mtvec, x0
    ecall
handler:
    csrr t0, mepc
    addi t0, t0, 4
    csrw mepc, t0
    mret
""")
    result = GoldenSim(prog, trace=True).run()
    assert result.halted_by == "ecall" and result.exit_code == 0x88
    report = check_trace(result.trace, initial_regs=abi_initial_regs())
    assert report.passed, report.errors


def test_soc_argument_must_be_a_spec():
    prog = assemble(".text\nmain:\n    ret\n")
    with pytest.raises(TypeError):
        GoldenSim(prog, soc=True)


def test_rvfi_checker_rejects_corrupted_trap_target():
    prog = assemble(TIMER_LOOP)
    result = GoldenSim(prog, soc=SocSpec(), trace=True).run()
    trace = result.trace
    for index in range(len(trace)):
        if trace.peek(index, "intr"):
            trace.poke(index, "pc_rdata", 0x7777777C)
            break
    report = check_trace(trace, initial_regs=abi_initial_regs())
    assert not report.passed


def test_serv_runs_interrupt_workload_with_serial_cpi():
    prog = assemble(TIMER_LOOP)
    result = ServSim(prog, soc=SocSpec()).run()
    assert result.halted_by == "poweroff" and result.exit_code == 5
    assert 30.0 <= result.cpi <= 36.0


# ------------------------------------------------------------ MMIO bus/devices


def test_uart_and_poweroff_devices():
    prog = assemble("""
.equ PWR,  0x40000
.equ UART, 0x40200
.text
main:
    li t0, UART
    lw t1, 4(t0)          # STATUS reads ready
    beq t1, x0, main
    li t2, 'h'
    sw t2, 0(t0)
    li t2, 'i'
    sw t2, 0(t0)
    li t0, PWR
    li t1, 123
    sw t1, 0(t0)
""")
    sim = GoldenSim(prog, soc=SocSpec())
    result = sim.run()
    assert result.halted_by == "poweroff" and result.exit_code == 123
    assert bytes(sim.soc.uart.output) == b"hi"


def test_sensor_replays_waveform_by_time():
    prog = assemble("""
.equ SENSOR, 0x40300
.text
main:
    li t0, SENSOR
    lw a0, 0(t0)          # sample at current mtime
    lw a1, 8(t0)          # COUNT
    slli a1, a1, 8
    or a0, a0, a1
    ecall
""")
    spec = SocSpec(sensor_samples=(10, 20, 30), sensor_ticks_per_sample=1000)
    result = GoldenSim(prog, soc=spec).run()
    assert result.exit_code == 10 | (3 << 8)


def test_mtime_write_rebases_clock():
    prog = assemble("""
.equ MTIME, 0x40100
.text
main:
    li t0, MTIME
    li t1, 5000
    sw t1, 0(t0)          # firmware sets the wall clock
    lw a0, 0(t0)          # and reads it straight back
    ecall
""")
    result = GoldenSim(prog, soc=SocSpec()).run()
    assert 5000 <= result.exit_code <= 5010


def test_device_windows_are_word_only():
    prog = assemble("""
.equ UART, 0x40200
.text
main:
    li t0, UART
    lb a0, 1(t0)
    ecall
""")
    with pytest.raises(MemoryError_):
        GoldenSim(prog, soc=SocSpec()).run()


def test_soc_spec_builds_isolated_instances():
    from repro.sim.memory import Memory
    spec = SocSpec(sensor_samples=(1, 2))
    one, two = Soc(spec, Memory()), Soc(spec, Memory())
    one.uart.output += b"x"
    assert not two.uart.output


# ------------------------- decoded-op cache vs MMIO (PR 3 satellite 3)


def test_executing_from_mmio_raises_not_caches():
    prog = assemble(f"""
.text
main:
    li t0, {TIMER_BASE}
    jr t0
""")
    sim = GoldenSim(prog, soc=SocSpec())
    with pytest.raises(MemoryError_, match="fetch from MMIO"):
        sim.run()
    # Nothing from the device window leaked into the decoded-op cache.
    assert TIMER_BASE not in sim.image.executors
    assert not any(pc >= TIMER_BASE for pc in sim.image.executors)


def test_store_to_mmio_does_not_pollute_decoded_cache():
    prog = assemble(f"""
.text
main:
    li t0, {SENSOR_BASE}
    li t1, 100
    sw t1, 8(x0)          # RAM store (innocuous)
    li a0, 1
    ecall
""")
    sim = GoldenSim(prog, soc=SocSpec())
    result = sim.run()
    assert result.exit_code == 1
    cached = set(sim.image.executors)
    assert cached and all(pc < 0x40000 for pc in cached)


def test_store_into_cached_text_still_invalidates_with_soc():
    # Self-modifying code under a SocBus: the store hook must reach the
    # RAM-backed decoded image exactly as without a bus.
    prog = assemble("""
.text
main:
    la t0, patch
    lw t1, 0(t0)
    la t2, target
    sw t1, 0(t2)          # overwrite `li a0, 1` with `li a0, 99`
target:
    li a0, 1
    ecall
patch:
    li a0, 99
""")
    result = GoldenSim(prog, soc=SocSpec()).run()
    assert result.exit_code == 99


# ------------------------------------------------ RTL slice + cosimulation


def test_mret_block_passes_preverification():
    """The 41st library block goes through the same Step-0 campaign as
    the base ISA: directed testbench + formal-lite property check."""
    from repro.rtl import build_block
    from repro.verify import block_verifier, check_block
    block = build_block("mret")
    passed, report = block_verifier(block)
    assert passed, report
    assert check_block(block).proven
    # failure injection: dropping the alignment mask must be caught
    from repro.rtl.ir import Sig
    broken = build_block("mret")
    broken.assigns["next_pc"] = Sig("mepc", 32)
    assert not check_block(broken).proven


def test_trap_free_cores_unchanged(trap_core):
    plain = build_rissp([d.mnemonic for d in INSTRUCTIONS])
    assert "mtvec" not in plain.registers
    assert "trap" not in plain.ports
    assert {"mtvec", "mepc", "mcause"} <= set(trap_core.registers)
    assert trap_core.meta["trap_unit"]


@pytest.mark.parametrize("backend", ["fused", "compiled", "interpreter"])
def test_cosimulate_timer_interrupt_workload(trap_core, backend):
    prog = assemble(TIMER_LOOP)
    mismatch = cosimulate(trap_core, prog, soc=SocSpec(), backend=backend)
    assert mismatch is None, mismatch


def test_rtl_hardware_traps_and_returns(trap_core):
    prog = assemble("""
.text
main:
    la t0, handler
    csrw mtvec, t0
    li a0, 1
    ecall
    j after
after:
    csrw mtvec, x0
    ecall
handler:
    li a0, 77
    csrr t0, mepc
    addi t0, t0, 4
    csrw mepc, t0
    mret
""")
    sim = RisspSim(trap_core, prog)
    result = sim.run()
    assert result.halted_by == "ecall"
    assert result.exit_code == 77
    assert sim.csr.mcause == CAUSE_ECALL_M     # latched by the trap unit


def test_rtl_trap_rows_carry_trap_flag(trap_core):
    prog = assemble("""
.text
main:
    la t0, handler
    csrw mtvec, t0
    ebreak
handler:
    csrw mtvec, x0
    li a0, 9
    ecall
""")
    sim = RisspSim(trap_core, prog, trace=True)
    result = sim.run()
    traps = [r for r in result.trace if r.trap]
    assert len(traps) == 1
    assert sim.csr.mcause == CAUSE_BREAKPOINT
    assert result.exit_code == 9


def test_cosim_catches_broken_trap_redirect():
    """Failure injection: a trap unit that fails to redirect the pc must
    be caught by the lock-step comparison (trap path is really gated)."""
    core = build_rissp(FULL_TRAP_SUBSET)
    core.assigns["pc_next"] = core.sig("ex_next_pc")    # drop the mux
    prog = assemble("""
.text
main:
    la t0, handler
    csrw mtvec, t0
    ecall
    nop                   # fall-through differs from the handler path
    nop
handler:
    csrw mtvec, x0
    li a0, 3
    ecall
""")
    mismatch = cosimulate(core, prog)
    assert mismatch is not None
    assert mismatch.field in ("pc_wdata", "halt", "trap")


def test_cosim_catches_diverging_device_state():
    """Different sensor waveforms on the two sides must diverge."""
    prog = assemble("""
.equ PWR,    0x40000
.equ SENSOR, 0x40300
.text
main:
    li t0, SENSOR
    lw a0, 0(t0)
    li t0, PWR
    sw a0, 0(t0)
""")
    core = build_rissp(FULL_TRAP_SUBSET)
    same = cosimulate(core, prog,
                      soc=SocSpec(sensor_samples=(5,),
                                  sensor_ticks_per_sample=100))
    assert same is None


def test_interrupt_timing_identical_across_backends(trap_core):
    """The interrupt must land on the same retirement index on both
    sides — cosim compares the intr column, so an off-by-one would fail."""
    prog = assemble(TIMER_LOOP)
    rtl_result = RisspSim(trap_core, prog, trace=True, soc=SocSpec()).run()
    gold_result = GoldenSim(prog, soc=SocSpec(), trace=True).run()
    rtl_intrs = [r.order for r in rtl_result.trace if r.intr]
    gold_intrs = [r.order for r in gold_result.trace if r.intr]
    assert rtl_intrs and rtl_intrs == gold_intrs


def test_mcause_has_interrupt_bit_after_timer_entry():
    prog = assemble(TIMER_LOOP)
    sim = GoldenSim(prog, soc=SocSpec())
    sim.run()
    assert sim.csr.mcause == CAUSE_MACHINE_TIMER
