"""Machine-mode trap/interrupt subsystem + MMIO peripheral bus (PR 3).

Covers the full cross-layer story: CSR semantics, trap entry/return,
timer interrupts and wfi fast-forward on the golden ISS (fast and
recorded paths), the Serv model, and the RTL harness; MMIO device
behaviour and its interaction with the decoded-op cache; and lock-step
cosimulation of trap/interrupt timing on both RTL backends — including a
failure-injection check that the cosim actually gates the trap path.
"""

import pytest

from repro.isa import INSTRUCTIONS, assemble
from repro.isa.csrs import (
    CAUSE_BREAKPOINT,
    CAUSE_ECALL_M,
    CAUSE_ILLEGAL_INSTRUCTION,
    CAUSE_MACHINE_TIMER,
    MCAUSE,
    MEPC,
    MIP,
    MSTATUS,
    MSTATUS_MIE,
    MTVEC,
)
from repro.rtl import build_rissp
from repro.rtl.core_sim import RisspSim, cosimulate
from repro.sim import CsrFile, GoldenSim, ServSim, SimulationError
from repro.sim.golden import abi_initial_regs
from repro.sim.memory import MemoryError_
from repro.soc import SENSOR_BASE, Soc, SocSpec, TIMER_BASE
from repro.verify.rvfi import check_trace

FULL_TRAP_SUBSET = [d.mnemonic for d in INSTRUCTIONS] + ["mret"]


@pytest.fixture(scope="module")
def trap_core():
    return build_rissp(FULL_TRAP_SUBSET)


#: Timer-interrupt workload: five ISR-counted periods paced through
#: mtimecmp re-arming, wfi duty-cycling in between, poweroff at the end.
TIMER_LOOP = """
.equ PWR,      0x40000
.equ MTIME,    0x40100
.equ MTIMECMP, 0x40108
.text
main:
    la t0, handler
    csrw mtvec, t0
    li t0, MTIMECMP
    li t1, 100
    sw t1, 0(t0)
    sw x0, 4(t0)
    li t0, 128
    csrw mie, t0
    csrsi mstatus, 8
    li s0, 0
loop:
    wfi
    li t1, 5
    beq s0, t1, done
    j loop
done:
    li t0, PWR
    sw s0, 0(t0)
hang:
    j hang
handler:
    addi s0, s0, 1
    li t0, MTIME
    lw t1, 0(t0)
    addi t1, t1, 100
    li t0, MTIMECMP
    sw t1, 0(t0)
    mret
"""


# ------------------------------------------------------------- CSR file unit


def test_csr_warl_masks():
    from repro.isa.csrs import MIE, MIE_MTIE, MIE_SDIE
    from repro.sim.csr import CsrError

    csr = CsrFile()
    csr.write(MSTATUS, 0xFFFFFFFF)
    assert csr.mstatus == 0x88          # only MIE|MPIE implemented
    csr.write(MTVEC, 0x1003)
    assert csr.mtvec == 0x1000          # direct mode, low bits forced 0
    csr.write(MIE, 0xFFFFFFFF)
    assert csr.mie == MIE_MTIE | MIE_SDIE   # per-source enable bits
    with pytest.raises(CsrError):
        csr.write(MIP, 0xFFFFFFFF)      # read-only: levels are wired
    assert csr.mip == 0
    csr.write(MEPC, 0x123)
    assert csr.mepc == 0x120


def test_pending_cause_arbitrates_by_fixed_priority():
    from repro.isa.csrs import (CAUSE_SENSOR_DATA, MIE, MIE_MTIE, MIE_SDIE,
                                MIP_MTIP, MIP_SDIP)

    csr = CsrFile()
    csr.write(MTVEC, 0x400)
    csr.write(MIE, MIE_MTIE | MIE_SDIE)
    csr.mstatus = MSTATUS_MIE
    assert csr.pending_cause() is None          # nothing pending
    csr.set_pending(MIP_SDIP)
    assert csr.pending_cause() == CAUSE_SENSOR_DATA
    csr.set_pending(MIP_SDIP | MIP_MTIP)        # race: both levels high
    assert csr.pending_cause() == CAUSE_MACHINE_TIMER   # timer outranks
    csr.write(MIE, MIE_SDIE)                    # mask the timer source
    assert csr.pending_cause() == CAUSE_SENSOR_DATA
    csr.mstatus = 0                             # global MIE off: no entry
    assert csr.pending_cause() is None


def test_trap_enter_stacks_and_mret_unstacks_mie():
    csr = CsrFile()
    csr.write(MTVEC, 0x400)
    csr.mstatus = MSTATUS_MIE
    target = csr.trap_enter(CAUSE_ECALL_M, 0x84)
    assert target == 0x400
    assert csr.mepc == 0x84 and csr.mcause == CAUSE_ECALL_M
    assert not csr.mstatus & MSTATUS_MIE       # masked inside the handler
    assert csr.do_mret() == 0x84
    assert csr.mstatus & MSTATUS_MIE           # restored on return


# ----------------------------------------------------- golden ISS trap paths


def test_legacy_halt_convention_unchanged():
    prog = assemble(".text\nmain:\n    li a0, 7\n    ecall\n")
    result = GoldenSim(prog).run()
    assert result.halted_by == "ecall" and result.exit_code == 7


def test_ecall_traps_once_handler_installed():
    prog = assemble("""
.text
main:
    la t0, handler
    csrw mtvec, t0
    li a0, 1
    ecall                 # traps, handler rewrites a0 and returns
    ebreak                # also traps; handler halts via second path
handler:
    csrr t0, mcause
    li t1, 3
    beq t0, t1, stop
    li a0, 42
    csrr t0, mepc
    addi t0, t0, 4
    csrw mepc, t0
    mret
stop:
    csrw mtvec, x0        # uninstall: next ebreak really halts
    ebreak
""")
    result = GoldenSim(prog).run()
    assert result.halted_by == "ebreak"
    assert result.exit_code == 42


def test_illegal_instruction_traps_with_mtval():
    prog = assemble("""
.text
main:
    la t0, handler
    csrw mtvec, t0
    la t1, bad
    jr t1
handler:
    csrr a0, mcause
    csrw mtvec, x0
    ecall
bad:
    .word 0xFFFFFFFF
""")
    sim = GoldenSim(prog)
    result = sim.run()
    assert result.halted_by == "ecall"
    assert result.exit_code == CAUSE_ILLEGAL_INSTRUCTION
    assert sim.csr.mtval == 0xFFFFFFFF


def test_illegal_instruction_without_handler_still_raises():
    prog = assemble(".text\nmain:\n    .word 0xFFFFFFFF\n")
    with pytest.raises(SimulationError):
        GoldenSim(prog).run()


def test_timer_interrupts_fast_and_recorded_paths_agree():
    prog = assemble(TIMER_LOOP)
    fast = GoldenSim(prog, soc=SocSpec()).run()
    recorded_sim = GoldenSim(prog, soc=SocSpec(), trace=True)
    recorded = recorded_sim.run()
    assert fast.halted_by == recorded.halted_by == "poweroff"
    assert fast.exit_code == recorded.exit_code == 5
    assert fast.instructions == recorded.instructions
    intr_rows = [r for r in recorded.trace if r.intr]
    assert len(intr_rows) == 5
    handler = prog.symbol("handler")
    assert all(r.pc_rdata == handler for r in intr_rows)


def test_wfi_fast_forwards_the_clock():
    prog = assemble(TIMER_LOOP)
    sim = GoldenSim(prog, soc=SocSpec())
    result = sim.run()
    # 5 x 100-tick periods elapse while only ~100 instructions retire —
    # wfi skipped the idle time instead of spinning through it.
    assert sim.soc.timer.mtime >= 500
    assert result.instructions < 150


def test_interrupt_trace_passes_rvfi_checker():
    prog = assemble(TIMER_LOOP)
    result = GoldenSim(prog, soc=SocSpec(), trace=True).run()
    report = check_trace(result.trace, initial_regs=abi_initial_regs())
    assert report.passed, report.errors


def test_rvfi_checker_accepts_mtval_reset_by_interrupt_entry():
    """Regression: an illegal-instruction trap sets mtval, a later timer
    interrupt resets it to 0; the shadow-CSR model must track the reset
    or it flags the handler's mtval read on a *correct* trace."""
    prog = assemble("""
.equ PWR,      0x40000
.equ MTIMECMP, 0x40108
.text
main:
    la t0, handler
    csrw mtvec, t0
    la t1, bad
    jr t1                 # illegal trap: mtval <- the junk word
resume:
    li t0, MTIMECMP
    li t1, 200
    sw t1, 0(t0)
    sw x0, 4(t0)
    li t0, 128
    csrw mie, t0
    csrsi mstatus, 8
wait:
    wfi                   # timer interrupt: mtval <- 0
    j wait
handler:
    csrr t1, mtval        # read back: junk word, then 0
    csrr t0, mcause
    bgez t0, fixup
    li t0, PWR
    sw t1, 0(t0)          # power off with the mtval the interrupt saw
fixup:
    la t0, resume
    csrw mepc, t0
    mret
bad:
    .word 0xFFFFFFFF
""")
    result = GoldenSim(prog, soc=SocSpec(), trace=True).run()
    assert result.halted_by == "poweroff" and result.exit_code == 0
    report = check_trace(result.trace, initial_regs=abi_initial_regs())
    assert report.passed, report.errors


def test_rvfi_checker_does_not_learn_blind_rmw_csr_writes():
    """Regression: csrrs/csrrc with rd=x0 on a CSR whose value was never
    observed must invalidate the shadow entry, not learn old|src with
    old guessed as 0 (mstatus holds an invisible MPIE after mret)."""
    prog = assemble("""
.text
main:
    la t0, handler
    csrw mtvec, t0
    ecall                 # trap + mret leaves MPIE set in mstatus
    csrsi mstatus, 8      # blind RMW: rd=x0, old mstatus unobserved
    csrr a0, mstatus      # real value 0x88; a naive shadow expects 0x8
    csrw mtvec, x0
    ecall
handler:
    csrr t0, mepc
    addi t0, t0, 4
    csrw mepc, t0
    mret
""")
    result = GoldenSim(prog, trace=True).run()
    assert result.halted_by == "ecall" and result.exit_code == 0x88
    report = check_trace(result.trace, initial_regs=abi_initial_regs())
    assert report.passed, report.errors


def test_soc_argument_must_be_a_spec():
    prog = assemble(".text\nmain:\n    ret\n")
    with pytest.raises(TypeError):
        GoldenSim(prog, soc=True)


def test_rvfi_checker_rejects_corrupted_trap_target():
    prog = assemble(TIMER_LOOP)
    result = GoldenSim(prog, soc=SocSpec(), trace=True).run()
    trace = result.trace
    for index in range(len(trace)):
        if trace.peek(index, "intr"):
            trace.poke(index, "pc_rdata", 0x7777777C)
            break
    report = check_trace(trace, initial_regs=abi_initial_regs())
    assert not report.passed


def test_serv_runs_interrupt_workload_with_serial_cpi():
    prog = assemble(TIMER_LOOP)
    result = ServSim(prog, soc=SocSpec()).run()
    assert result.halted_by == "poweroff" and result.exit_code == 5
    assert 30.0 <= result.cpi <= 36.0


# ------------------------------------------------------------ MMIO bus/devices


def test_uart_and_poweroff_devices():
    prog = assemble("""
.equ PWR,  0x40000
.equ UART, 0x40200
.text
main:
    li t0, UART
    lw t1, 4(t0)          # STATUS reads ready
    beq t1, x0, main
    li t2, 'h'
    sw t2, 0(t0)
    li t2, 'i'
    sw t2, 0(t0)
    li t0, PWR
    li t1, 123
    sw t1, 0(t0)
""")
    sim = GoldenSim(prog, soc=SocSpec())
    result = sim.run()
    assert result.halted_by == "poweroff" and result.exit_code == 123
    assert bytes(sim.soc.uart.output) == b"hi"


def test_sensor_replays_waveform_by_time():
    prog = assemble("""
.equ SENSOR, 0x40300
.text
main:
    li t0, SENSOR
    lw a0, 0(t0)          # sample at current mtime
    lw a1, 8(t0)          # COUNT
    slli a1, a1, 8
    or a0, a0, a1
    ecall
""")
    spec = SocSpec(sensor_samples=(10, 20, 30), sensor_ticks_per_sample=1000)
    result = GoldenSim(prog, soc=spec).run()
    assert result.exit_code == 10 | (3 << 8)


def test_mtime_write_rebases_clock():
    prog = assemble("""
.equ MTIME, 0x40100
.text
main:
    li t0, MTIME
    li t1, 5000
    sw t1, 0(t0)          # firmware sets the wall clock
    lw a0, 0(t0)          # and reads it straight back
    ecall
""")
    result = GoldenSim(prog, soc=SocSpec()).run()
    assert 5000 <= result.exit_code <= 5010


def test_device_windows_are_word_only():
    prog = assemble("""
.equ UART, 0x40200
.text
main:
    li t0, UART
    lb a0, 1(t0)
    ecall
""")
    with pytest.raises(MemoryError_):
        GoldenSim(prog, soc=SocSpec()).run()


def test_soc_spec_builds_isolated_instances():
    from repro.sim.memory import Memory
    spec = SocSpec(sensor_samples=(1, 2))
    one, two = Soc(spec, Memory()), Soc(spec, Memory())
    one.uart.output += b"x"
    assert not two.uart.output


# ------------------------- decoded-op cache vs MMIO (PR 3 satellite 3)


def test_executing_from_mmio_raises_not_caches():
    prog = assemble(f"""
.text
main:
    li t0, {TIMER_BASE}
    jr t0
""")
    sim = GoldenSim(prog, soc=SocSpec())
    with pytest.raises(MemoryError_, match="fetch from MMIO"):
        sim.run()
    # Nothing from the device window leaked into the decoded-op cache.
    assert TIMER_BASE not in sim.image.executors
    assert not any(pc >= TIMER_BASE for pc in sim.image.executors)


def test_store_to_mmio_does_not_pollute_decoded_cache():
    prog = assemble(f"""
.text
main:
    li t0, {SENSOR_BASE}
    li t1, 100
    sw t1, 8(x0)          # RAM store (innocuous)
    li a0, 1
    ecall
""")
    sim = GoldenSim(prog, soc=SocSpec())
    result = sim.run()
    assert result.exit_code == 1
    cached = set(sim.image.executors)
    assert cached and all(pc < 0x40000 for pc in cached)


def test_store_into_cached_text_still_invalidates_with_soc():
    # Self-modifying code under a SocBus: the store hook must reach the
    # RAM-backed decoded image exactly as without a bus.
    prog = assemble("""
.text
main:
    la t0, patch
    lw t1, 0(t0)
    la t2, target
    sw t1, 0(t2)          # overwrite `li a0, 1` with `li a0, 99`
target:
    li a0, 1
    ecall
patch:
    li a0, 99
""")
    result = GoldenSim(prog, soc=SocSpec()).run()
    assert result.exit_code == 99


# ------------------------------------------------ RTL slice + cosimulation


def test_mret_block_passes_preverification():
    """The 41st library block goes through the same Step-0 campaign as
    the base ISA: directed testbench + formal-lite property check."""
    from repro.rtl import build_block
    from repro.verify import block_verifier, check_block
    block = build_block("mret")
    passed, report = block_verifier(block)
    assert passed, report
    assert check_block(block).proven
    # failure injection: dropping the alignment mask must be caught
    from repro.rtl.ir import Sig
    broken = build_block("mret")
    broken.assigns["next_pc"] = Sig("mepc", 32)
    assert not check_block(broken).proven


def test_trap_free_cores_unchanged(trap_core):
    plain = build_rissp([d.mnemonic for d in INSTRUCTIONS])
    assert "mtvec" not in plain.registers
    assert "trap" not in plain.ports
    assert {"mtvec", "mepc", "mcause"} <= set(trap_core.registers)
    assert trap_core.meta["trap_unit"]


@pytest.mark.parametrize("backend", ["fused", "compiled", "interpreter"])
def test_cosimulate_timer_interrupt_workload(trap_core, backend):
    prog = assemble(TIMER_LOOP)
    mismatch = cosimulate(trap_core, prog, soc=SocSpec(), backend=backend)
    assert mismatch is None, mismatch


def test_rtl_hardware_traps_and_returns(trap_core):
    prog = assemble("""
.text
main:
    la t0, handler
    csrw mtvec, t0
    li a0, 1
    ecall
    j after
after:
    csrw mtvec, x0
    ecall
handler:
    li a0, 77
    csrr t0, mepc
    addi t0, t0, 4
    csrw mepc, t0
    mret
""")
    sim = RisspSim(trap_core, prog)
    result = sim.run()
    assert result.halted_by == "ecall"
    assert result.exit_code == 77
    assert sim.csr.mcause == CAUSE_ECALL_M     # latched by the trap unit


def test_rtl_trap_rows_carry_trap_flag(trap_core):
    prog = assemble("""
.text
main:
    la t0, handler
    csrw mtvec, t0
    ebreak
handler:
    csrw mtvec, x0
    li a0, 9
    ecall
""")
    sim = RisspSim(trap_core, prog, trace=True)
    result = sim.run()
    traps = [r for r in result.trace if r.trap]
    assert len(traps) == 1
    assert sim.csr.mcause == CAUSE_BREAKPOINT
    assert result.exit_code == 9


def test_cosim_catches_broken_trap_redirect():
    """Failure injection: a trap unit that fails to redirect the pc must
    be caught by the lock-step comparison (trap path is really gated)."""
    core = build_rissp(FULL_TRAP_SUBSET)
    core.assigns["pc_next"] = core.sig("ex_next_pc")    # drop the mux
    prog = assemble("""
.text
main:
    la t0, handler
    csrw mtvec, t0
    ecall
    nop                   # fall-through differs from the handler path
    nop
handler:
    csrw mtvec, x0
    li a0, 3
    ecall
""")
    mismatch = cosimulate(core, prog)
    assert mismatch is not None
    assert mismatch.field in ("pc_wdata", "halt", "trap")


def test_cosim_catches_diverging_device_state():
    """Different sensor waveforms on the two sides must diverge."""
    prog = assemble("""
.equ PWR,    0x40000
.equ SENSOR, 0x40300
.text
main:
    li t0, SENSOR
    lw a0, 0(t0)
    li t0, PWR
    sw a0, 0(t0)
""")
    core = build_rissp(FULL_TRAP_SUBSET)
    same = cosimulate(core, prog,
                      soc=SocSpec(sensor_samples=(5,),
                                  sensor_ticks_per_sample=100))
    assert same is None


def test_interrupt_timing_identical_across_backends(trap_core):
    """The interrupt must land on the same retirement index on both
    sides — cosim compares the intr column, so an off-by-one would fail."""
    prog = assemble(TIMER_LOOP)
    rtl_result = RisspSim(trap_core, prog, trace=True, soc=SocSpec()).run()
    gold_result = GoldenSim(prog, soc=SocSpec(), trace=True).run()
    rtl_intrs = [r.order for r in rtl_result.trace if r.intr]
    gold_intrs = [r.order for r in gold_result.trace if r.intr]
    assert rtl_intrs and rtl_intrs == gold_intrs


def test_mcause_has_interrupt_bit_after_timer_entry():
    prog = assemble(TIMER_LOOP)
    sim = GoldenSim(prog, soc=SocSpec())
    sim.run()
    assert sim.csr.mcause == CAUSE_MACHINE_TIMER


# ----------------------------------- multi-source interrupt fabric (PR 5)


def _run_everywhere(trap_core, src, soc=None, n=50_000):
    """One program on golden, Serv and all three RTL backends; all five
    outcomes (halt cause, exit code, instruction count) must agree."""
    prog = assemble(src)
    outcomes = {}
    gold = GoldenSim(prog, soc=soc)
    result = gold.run(n)
    outcomes["golden"] = (result.halted_by, result.exit_code,
                          result.instructions)
    serv = ServSim(prog, soc=soc).run(n)
    outcomes["serv"] = (serv.halted_by, serv.exit_code, serv.instructions)
    for backend in ("fused", "compiled", "interpreter"):
        r = RisspSim(trap_core, prog, backend=backend, soc=soc).run(n)
        outcomes[f"rtl-{backend}"] = (r.halted_by, r.exit_code,
                                      r.instructions)
    assert len(set(outcomes.values())) == 1, outcomes
    return gold, outcomes["golden"]


def test_sensor_port_data_ready_level_and_ack():
    from repro.sim.memory import Memory

    spec = SocSpec(sensor_samples=(5, 6, 7), sensor_ticks_per_sample=10)
    soc = Soc(spec, Memory())
    soc.sync(0)
    assert soc.sensor.irq_pending          # sample 0 ready at t=0
    soc.sensor.store(soc.sensor.ACK, 1, 4)
    assert not soc.sensor.irq_pending      # next sample due at t=10
    soc.sync(10)
    assert soc.sensor.irq_pending
    soc.sensor.store(soc.sensor.ACK, 3, 4)
    soc.sync(10_000)
    assert not soc.sensor.irq_pending      # stream exhausted: level low
    assert soc.sensor.ready_time() is None


def test_bus_irq_lines_packs_device_levels():
    from repro.isa.csrs import MIP_MTIP, MIP_SDIP
    from repro.sim.memory import Memory

    spec = SocSpec(sensor_samples=(1,), sensor_ticks_per_sample=5)
    soc = Soc(spec, Memory())
    soc.timer.mtimecmp = 20
    assert soc.irq_lines(0) == MIP_SDIP            # sensor ready at t=0
    soc.sensor.store(soc.sensor.ACK, 1, 4)
    assert soc.irq_lines(0) == 0
    assert soc.irq_lines(25) == MIP_MTIP           # timer level at t>=20


def test_fire_index_is_min_over_enabled_sources():
    from repro.isa.csrs import MIE, MIE_MTIE, MIE_SDIE, MTVEC as _MTVEC
    from repro.sim.memory import Memory

    spec = SocSpec(sensor_samples=(1, 2), sensor_ticks_per_sample=30)
    soc = Soc(spec, Memory())
    soc.timer.mtimecmp = 100
    soc.sensor.store(soc.sensor.ACK, 1, 4)   # next sensor edge at t=30
    csr = CsrFile()
    csr.write(_MTVEC, 0x400)
    csr.mstatus = MSTATUS_MIE
    csr.write(MIE, MIE_MTIE)
    assert soc.fire_index(csr) == 100        # timer only
    csr.write(MIE, MIE_MTIE | MIE_SDIE)
    assert soc.fire_index(csr) == 30         # sensor edge is earlier
    csr.mstatus = 0
    from repro.soc import NEVER
    assert soc.fire_index(csr) == NEVER      # global MIE gates everything


def test_two_source_priority_on_golden_trace(trap_core):
    """Both levels high in one retirement window: timer entry (intr=7)
    first, sensor entry (intr=16) right after the handler's mret."""
    src = """
.equ PWR,      0x40000
.equ MTIMECMP, 0x40108
.equ SENSOR,   0x40300
.text
main:
    la t0, handler
    csrw mtvec, t0
    li t0, MTIMECMP
    li t1, 60
    sw t1, 0(t0)
    sw x0, 4(t0)
    li t0, 0x10080           # mie = SDIE | MTIE
    csrw mie, t0
    csrsi mstatus, 8
    li s0, 0
loop:
    wfi
    li t1, 2
    blt s0, t1, loop
    csrci mstatus, 8
    li t0, PWR
    sw s0, 0(t0)
hang:
    j hang
handler:
    csrr t0, mcause
    bgez t0, back
    slli t0, t0, 1
    srli t0, t0, 1
    li t1, 7
    bne t0, t1, sensor
    li t0, MTIMECMP
    lw t1, 0(t0)
    addi t1, t1, 60
    sw t1, 0(t0)
    addi s0, s0, 1
    j back
sensor:
    li t0, SENSOR
    lw t1, 4(t0)
    addi t1, t1, 1
    sw t1, 12(t0)            # ACK
back:
    mret
"""
    spec = SocSpec(sensor_samples=tuple(range(8)),
                   sensor_ticks_per_sample=60)   # same grid: always racing
    prog = assemble(src)
    result = GoldenSim(prog, soc=spec, trace=True).run(20_000)
    assert result.halted_by == "poweroff"
    codes = [r.intr for r in result.trace if r.intr]
    assert codes, "no interrupts taken"
    # Every window with both sources due must enter timer-first.
    timer_positions = [i for i, c in enumerate(codes) if c == 7]
    assert timer_positions and all(
        codes[i + 1] == 16 for i in timer_positions if i + 1 < len(codes))
    mismatch = cosimulate(trap_core, prog, soc=spec)
    assert mismatch is None, mismatch


def test_interrupt_rows_carry_arbitrated_cause_and_pass_checker():
    from repro.workloads import WORKLOADS, build_program

    workload = WORKLOADS["sensor_streaming"]
    result = GoldenSim(build_program(workload), soc=workload.soc_spec,
                       trace=True).run(500_000)
    assert result.halted_by == "poweroff"
    codes = {r.intr for r in result.trace if r.intr}
    assert codes == {7, 16}
    report = check_trace(result.trace, initial_regs=abi_initial_regs())
    assert report.passed, report.errors


def test_rvfi_checker_rejects_unknown_intr_code():
    prog = assemble(TIMER_LOOP)
    result = GoldenSim(prog, soc=SocSpec(), trace=True).run()
    trace = result.trace
    for index in range(len(trace)):
        if trace.peek(index, "intr"):
            trace.poke(index, "intr", 33)      # no such source
            break
    report = check_trace(trace, initial_regs=abi_initial_regs())
    assert not report.passed


# ------------------------- PR 5 bugfix regressions (fail on pre-PR code)


def test_write_to_read_only_csr_traps_on_all_backends(trap_core):
    """Zicsr conformance: a write to read-only ``mip`` must raise illegal
    instruction (pre-PR it was silently WARL-ignored), with mcause=2 and
    mtval holding the faulting opcode word."""
    src = """
.text
main:
    la t0, handler
    csrw mtvec, t0
    li t1, 0x80
    csrw mip, t1             # write to read-only CSR: illegal
    li a0, 1                 # must never be reached
    csrw mtvec, x0
    ecall
handler:
    csrr a0, mtval           # exit code = faulting opcode word
    csrw mtvec, x0
    ecall
"""
    gold, (halted_by, exit_code, _) = _run_everywhere(trap_core, src)
    assert halted_by == "ecall"
    assert gold.csr.mcause == CAUSE_ILLEGAL_INSTRUCTION
    # mtval holds the csrw-mip opcode (csrrw x0, mip, t1) on every side.
    from repro.isa.encoding import Instruction, encode
    word = encode(Instruction("csrrw", rd=0, rs1=6, imm=MIP))
    assert exit_code == word and gold.csr.mtval == word
    prog = assemble(src)
    assert cosimulate(trap_core, prog) is None


def test_pure_read_forms_of_read_only_csr_do_not_trap(trap_core):
    """csrrs/csrrc with rs1=x0 and csrrsi/csrrci with uimm=0 are reads:
    no write side effect, no illegal trap — even on read-only mip."""
    src = """
.text
main:
    csrr a0, mip             # csrrs rs1=x0: pure read, no trap
    csrrs a1, mip, x0
    csrrsi a2, mip, 0
    csrrci a3, mip, 0
    add a0, a0, a1
    add a0, a0, a2
    add a0, a0, a3
    ecall
"""
    _, (halted_by, exit_code, _) = _run_everywhere(trap_core, src)
    assert halted_by == "ecall" and exit_code == 0


def test_rvfi_checker_flags_untrapped_read_only_write():
    """The shadow model also pins the rule: a trace row where csrw-mip
    retired *without* trapping must be rejected."""
    prog = assemble("""
.text
main:
    li t1, 0x80
    csrw mscratch, t1
    li a0, 0
    ecall
""")
    result = GoldenSim(prog, trace=True).run()
    trace = result.trace
    # Forge the mscratch write into a mip write (same operands).
    from repro.isa.encoding import Instruction, encode
    forged = encode(Instruction("csrrw", rd=0, rs1=6, imm=MIP))
    for index in range(len(trace)):
        word = trace.peek(index, "insn")
        try:
            from repro.isa.encoding import decode
            if decode(word).mnemonic == "csrrw":
                trace.poke(index, "insn", forged)
                break
        except Exception:
            continue
    report = check_trace(trace, initial_regs=abi_initial_regs())
    assert any("read-only" in error for error in report.errors)


def test_wfi_wakes_on_pending_with_global_mie_masked(trap_core):
    """Privileged-spec rule: wfi resumes when an *enabled* interrupt
    becomes pending, regardless of mstatus.MIE (pre-PR the sleep was
    skipped entirely and mip read back 0)."""
    src = """
.equ PWR,      0x40000
.equ MTIMECMP, 0x40108
.text
main:
    la t0, handler
    csrw mtvec, t0
    li t0, MTIMECMP
    li t1, 100
    sw t1, 0(t0)
    sw x0, 4(t0)
    li t0, 128
    csrw mie, t0             # MTIE enabled, mstatus.MIE stays 0
    wfi                      # must sleep until MTIP rises at t=100
    csrr a0, mip
    li t0, PWR
    sw a0, 0(t0)
hang:
    j hang
handler:
    mret
"""
    gold, (halted_by, exit_code, _) = _run_everywhere(
        trap_core, src, soc=SocSpec())
    assert halted_by == "poweroff"
    assert exit_code & 0x80                    # MTIP pending at wake-up
    assert gold.soc.timer.mtime >= 100         # clock really advanced


def test_wfi_with_nothing_armed_halts_cleanly(trap_core):
    """With no enabled source that could ever become pending, wfi must
    terminate the run deterministically (pre-PR it fell through as a nop
    and the idle loop spun to the instruction limit)."""
    src = """
.text
main:
    li a0, 7
idle:
    wfi                      # mie = 0: nothing can ever wake us
    j idle
"""
    _, (halted_by, exit_code, count) = _run_everywhere(
        trap_core, src, soc=SocSpec(), n=10_000)
    assert halted_by == "wfi" and exit_code == 7
    assert count < 100                         # no spin to the limit
    # Identical without any SoC attached.
    prog = assemble(src)
    bare = GoldenSim(prog).run(10_000)
    assert bare.halted_by == "wfi" and bare.instructions < 100


def test_wfi_exhausted_sensor_stream_halts_cleanly():
    """Sensor-only wake source: once every sample is acknowledged the
    level can never rise again, so a further wfi ends the run."""
    src = """
.equ SENSOR, 0x40300
.text
main:
    li t0, 0x10000           # mie = SDIE only
    csrw mie, t0
    li t0, SENSOR
    lw a0, 0(t0)             # consume the only sample...
    li t1, 1
    sw t1, 12(t0)            # ...and ACK it: stream exhausted
sleep:
    wfi
    j sleep
"""
    prog = assemble(src)
    spec = SocSpec(sensor_samples=(42,), sensor_ticks_per_sample=10)
    result = GoldenSim(prog, soc=spec).run(10_000)
    assert result.halted_by == "wfi" and result.exit_code == 42


def test_rv32e_register_bound_word_traps_with_mtval(trap_core):
    """A decodable word using x16+ must trap as illegal with mtval
    holding the opcode — pre-PR the RTL backends silently executed it
    with the register field truncated to the 16-entry file."""
    word = (1 << 20) | (1 << 15) | (20 << 7) | 0b0110011   # add x20,x1,x1
    src = f"""
.text
main:
    la t0, handler
    csrw mtvec, t0
    .word {word:#x}
    li a0, 111               # must never be reached
    csrw mtvec, x0
    ecall
handler:
    csrr a0, mtval
    csrw mtvec, x0
    ecall
"""
    _, (halted_by, exit_code, _) = _run_everywhere(trap_core, src)
    assert halted_by == "ecall" and exit_code == word
    assert cosimulate(trap_core, assemble(src)) is None


def test_rv32e_register_bound_word_refused_without_handler(trap_core):
    word = (1 << 20) | (1 << 15) | (20 << 7) | 0b0110011
    src = f".text\nmain:\n    .word {word:#x}\n"
    prog = assemble(src)
    with pytest.raises(SimulationError):
        GoldenSim(prog).run()
    for backend in ("fused", "compiled", "interpreter"):
        with pytest.raises(SimulationError):
            RisspSim(trap_core, prog, backend=backend).run()


# ------------------------------ SensorPort edge semantics (PR 9 satellite)


def test_sensor_index_clamps_past_stream_end(trap_core):
    """Waveform exhaustion: with the platform clock started far past the
    stream end (the scenario engine's ``mtime_offset`` knob), INDEX
    clamps to the last sample instead of running off the table — on
    every backend."""
    src = """
.equ SENSOR, 0x40300
.text
main:
    li t0, SENSOR
    lw a0, 0(t0)             # DATA: clamped to the last sample
    lw a1, 4(t0)             # INDEX: COUNT-1, not mtime/tps
    slli a1, a1, 8
    or a0, a0, a1
    ecall
"""
    spec = SocSpec(sensor_samples=(10, 20, 30),
                   sensor_ticks_per_sample=10, mtime_offset=100_000)
    _, (halted_by, exit_code, _) = _run_everywhere(trap_core, src,
                                                   soc=spec)
    assert halted_by == "ecall"
    assert exit_code == 30 | (2 << 8)


def test_ack_without_pending_parks_the_stream(trap_core):
    """ACK past COUNT with nothing pending: the data-ready level can
    never rise again, so a sensor-only wfi ends the run instead of
    waking or spinning — identically everywhere."""
    src = """
.equ SENSOR, 0x40300
.text
main:
    li t0, SENSOR
    li t1, 9
    sw t1, 12(t0)            # ACK 9 of a 3-sample stream
    li t1, 0x10000           # mie = SDIE only
    csrw mie, t1
    li a0, 55
    wfi                      # the over-acked stream can never pend
    li a0, 77                # must never run
    ecall
"""
    spec = SocSpec(sensor_samples=(1, 2, 3), sensor_ticks_per_sample=10)
    _, (halted_by, exit_code, count) = _run_everywhere(
        trap_core, src, soc=spec, n=10_000)
    assert halted_by == "wfi" and exit_code == 55
    assert count < 50


def test_ack_ahead_of_stream_wakes_at_future_sample(trap_core):
    """ACK of samples that have not arrived yet is not an error: the
    level stays low until the acknowledged index becomes ready, and a
    masked wfi fast-forwards exactly there."""
    src = """
.equ SENSOR, 0x40300
.text
main:
    li t0, SENSOR
    li t1, 2
    sw t1, 12(t0)            # skip ahead: wait for sample 2 (t=2000)
    li t1, 0x10000
    csrw mie, t1             # enabled for wake, mstatus.MIE off
    wfi
    lw a0, 0(t0)             # the sample we skipped to
    ecall
"""
    spec = SocSpec(sensor_samples=(7, 8, 9), sensor_ticks_per_sample=1000)
    gold, (halted_by, exit_code, _) = _run_everywhere(
        trap_core, src, soc=spec, n=10_000)
    assert halted_by == "ecall" and exit_code == 9
    assert gold.soc.timer.mtime >= 2000       # really fast-forwarded


def test_same_cycle_sensor_vs_timer_race_is_timer_first(trap_core):
    """Sensor data-ready and the timer comparator rising in the same
    window take the arbiter's fixed priority — timer first — on every
    backend (the ``arb.race.timer_first`` coverage bin)."""
    src = """
.equ TIMER, 0x40100
.equ SENSOR, 0x40300
.text
main:
    la t0, handler
    csrw mtvec, t0
    li t0, SENSOR
    li t1, 1
    sw t1, 12(t0)            # ACK sample 0: next data-ready at t = 60
    li t0, TIMER
    li t1, 60
    sw t1, 8(t0)             # MTIMECMP = 60 — the same instant
    sw x0, 12(t0)
    li t1, 65664             # MTIE | SDIE
    csrw mie, t1
    csrsi mstatus, 8
spin:
    j spin
handler:
    csrr a0, mcause
    csrw mtvec, x0
    ecall
"""
    spec = SocSpec(sensor_samples=(1, 2, 3), sensor_ticks_per_sample=60)
    _, (halted_by, exit_code, _) = _run_everywhere(
        trap_core, src, soc=spec, n=10_000)
    assert halted_by == "ecall"
    assert exit_code == 0x8000_0007           # timer cause, not 16
