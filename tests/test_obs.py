"""Telemetry subsystem tests (PR 8): counters, spans, manifests, traces.

Four contracts pinned here:

* **off means off** — with no session open, every instrumented path is
  behaviorally inert, and a fused-backend run is *bit-identical* (result
  fields, architectural state, full RVFI columns) with telemetry on or
  off, because nothing is ever injected into the exec-compiled loops;
* **fixed structure** — a session always carries exactly the
  :data:`repro.obs.COUNTERS` registry, and farm task snapshots exactly
  :data:`repro.obs.TASK_SNAPSHOT_KEYS`, so merged telemetry is
  structure-identical across worker counts;
* **the counters mean what they say** — fused exit causes, compile-cache
  tiers, fleet divergence causes and riscof signature tiers are each
  driven and checked against known workloads;
* **manifest/trace round-trip** — the written documents validate, and
  validation actually rejects corruption.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.isa import INSTRUCTIONS, assemble
from repro.rtl.core_sim import RisspSim
from repro.rtl.rissp import build_rissp

FULL_SUBSET = [d.mnemonic for d in INSTRUCTIONS]

HALT_SOURCE = """
    .text
    li a0, 0
    li t0, 0
loop:
    add a0, a0, t0
    addi t0, t0, 1
    sw a0, 128(zero)
    lw a1, 128(zero)
    blt t0, a2, loop
    ecall
"""


@pytest.fixture(scope="module")
def full_core():
    return build_rissp(FULL_SUBSET)


@pytest.fixture(scope="module")
def halt_program():
    return assemble(HALT_SOURCE)


# ----------------------------------------------------- session basics

def test_session_initializes_every_registered_counter():
    with obs.session() as telemetry:
        assert set(telemetry.counters) == set(obs.COUNTERS)
        assert all(value == 0 for value in telemetry.counters.values())
        assert obs.get() is telemetry
    assert obs.get() is None


def test_sessions_nest_and_restore():
    with obs.session() as outer:
        obs.bump("farm.tasks")
        with obs.session() as inner:
            assert obs.get() is inner
            obs.bump("farm.tasks")
            obs.bump("farm.tasks")
        assert obs.get() is outer
        assert outer.counters["farm.tasks"] == 1
        assert inner.counters["farm.tasks"] == 2


def test_bump_and_span_are_noops_when_off():
    assert obs.get() is None
    obs.bump("farm.tasks")  # must not raise, must not create a session
    with obs.span("nothing") as record:
        assert record is None
    assert obs.get() is None


def test_spans_record_name_labels_and_duration():
    with obs.session() as telemetry:
        with obs.span("stage_a", workers=4):
            pass
    (record,) = telemetry.spans
    assert record["name"] == "stage_a"
    assert record["labels"] == {"workers": 4}
    assert record["dur_sec"] >= 0.0
    assert record["start_sec"] >= 0.0


def test_merged_counters_fold_task_snapshots():
    with obs.session() as telemetry:
        telemetry.bump("fused.runs", 2)
        telemetry.add_task({"task_id": "t0", "pid": 1, "start_wall": 0.0,
                            "queue_wait_sec": 0.0, "run_sec": 0.0,
                            "counters": {"fused.runs": 3,
                                         "farm.core_rebuild.build": 1}})
    merged = telemetry.merged_counters()
    assert merged["fused.runs"] == 5
    assert merged["farm.core_rebuild.build"] == 1
    # Untouched registry names are still present (fixed structure).
    assert merged["fleet.diverge.trap"] == 0


# ------------------------------------------------- instrumented sites

def test_fused_loop_counters(full_core, halt_program):
    sim = RisspSim(full_core, halt_program)
    sim.rtl.regfile_data[12] = 5
    with obs.session() as telemetry:
        result = sim.run(max_instructions=10_000)
    counters = telemetry.counters
    assert result.halted_by == "ecall"
    assert counters["fused.exit.halt"] == 1
    assert counters["fused.runs"] >= 1
    assert counters["fused.retired"] == result.instructions
    # Every retirement probes the shared per-word decode cache once.
    assert counters["decode_cache.lookups"] == result.instructions
    assert counters["decode_cache.misses"] <= result.instructions


def test_compile_cache_counters(halt_program):
    from repro.rtl.compiled import compile_core

    core = build_rissp(["addi", "add", "ecall"])
    with obs.session() as telemetry:
        compile_core(core)
        compile_core(core)
    hits = telemetry.counters["compile_cache.core.hit"]
    misses = telemetry.counters["compile_cache.core.miss"]
    # First call may hit (structure compiled by an earlier test) or miss;
    # the second call must hit either way.
    assert hits >= 1
    assert hits + misses == 2


def test_fleet_divergence_and_signature_counters():
    """The telemetry probe drives one lane per divergence cause and a
    double golden-signature lookup — every family must report."""
    from repro.farm import telemetry_probe

    with obs.session() as telemetry:
        telemetry_probe()
    counters = telemetry.counters
    for cause in ("emulated", "mret", "trap", "rv32e_bound", "illegal"):
        assert counters[f"fleet.diverge.{cause}"] == 1, cause
    assert counters["fleet.passes"] >= 1
    assert counters["riscof.sig_lookup"] == 2
    # Second lookup is always an in-process memo hit; the first may also
    # hit if another test already warmed the riscof memo.
    assert 1 <= counters["riscof.sig_memo_hit"] <= 2
    assert counters["riscof.sig_memo_hit"] \
        + counters["riscof.sig_disk_hit"] \
        + counters["riscof.sig_recompute"] == 2


# ------------------------------------------- farm snapshot structure

def _campaign_session(workers: int):
    from repro.farm import cosim_campaign

    with obs.session() as telemetry:
        verdicts = cosim_campaign(workloads=(), fuzz_chunks=3,
                                  fuzz_max_instructions=500,
                                  workers=workers)
    return verdicts, telemetry


def test_farm_snapshots_structure_identical_across_worker_counts():
    """The acceptance contract: campaign telemetry at workers=4 is
    bit-identical *in structure* to workers=1 — same counter registry,
    same task ids in the same (submission) order, same snapshot keys —
    even though timings and per-process cache hits legitimately differ."""
    verdicts_serial, serial = _campaign_session(1)
    verdicts_pool, pool = _campaign_session(4)
    assert verdicts_serial == verdicts_pool  # results first
    assert list(serial.counters) == list(pool.counters)
    assert [t["task_id"] for t in serial.tasks] \
        == [t["task_id"] for t in pool.tasks]
    for snapshot in serial.tasks + pool.tasks:
        assert tuple(sorted(snapshot)) \
            == tuple(sorted(obs.TASK_SNAPSHOT_KEYS))
        assert set(snapshot["counters"]) == set(obs.COUNTERS)
        assert snapshot["queue_wait_sec"] >= 0.0
        assert snapshot["run_sec"] >= 0.0
    assert serial.counters["farm.tasks"] == 3
    assert pool.counters["farm.tasks"] == 3
    # Serial path runs in-process: every snapshot carries the parent pid.
    assert all(t["pid"] == serial.pid for t in serial.tasks)


def test_farm_without_session_records_nothing():
    from repro.farm import cosim_campaign

    verdicts = cosim_campaign(workloads=(), fuzz_chunks=1,
                              fuzz_max_instructions=500, workers=1)
    assert obs.get() is None
    assert all(v is None for v in verdicts.values())


# ------------------------------------------------- manifest and trace

def test_manifest_round_trip(tmp_path, full_core, halt_program):
    sim = RisspSim(full_core, halt_program)
    sim.rtl.regfile_data[12] = 3
    with obs.session() as telemetry:
        with obs.span("cosim", workers=1):
            sim.run(max_instructions=10_000)
    path = obs.write_manifest(tmp_path / "run.json", telemetry,
                              {"stages": ["cosim"]})
    document = json.loads(path.read_text())
    assert obs.validate_manifest(document) == []
    assert document["kind"] == "repro-telemetry-manifest"
    assert document["config"] == {"stages": ["cosim"]}
    assert document["counters"]["fused.exit.halt"] == 1
    assert document["host"]["cpu_count"] >= 1
    rates = document["cache_rates"]
    assert 0.0 <= rates["decode_cache.hit_rate"] <= 1.0


def test_manifest_validation_rejects_corruption():
    with obs.session() as telemetry:
        pass
    document = obs.build_manifest(telemetry)
    assert obs.validate_manifest(document) == []
    # Counter outside the registry.
    bad = json.loads(json.dumps(document))
    bad["counters"]["made.up"] = 1
    assert any("unregistered" in e for e in obs.validate_manifest(bad))
    # Missing registry counter.
    bad = json.loads(json.dumps(document))
    del bad["counters"]["fused.runs"]
    assert any("missing registry" in e for e in obs.validate_manifest(bad))
    # Task snapshot with a wrong key set.
    bad = json.loads(json.dumps(document))
    bad["tasks"] = [{"task_id": "x"}]
    assert any("exactly keys" in e for e in obs.validate_manifest(bad))
    # write_manifest refuses what validate_manifest rejects.
    telemetry.counters["bogus.name"] = 1
    with pytest.raises(ValueError):
        obs.write_manifest("/dev/null", telemetry)


def test_trace_event_export(tmp_path):
    with obs.session() as telemetry:
        with obs.span("cosim", workers=2):
            pass
        telemetry.add_task({"task_id": "fuzz[000]", "pid": 4242,
                            "start_wall": telemetry.start_wall + 0.5,
                            "queue_wait_sec": 0.25, "run_sec": 0.125,
                            "counters": {}})
    path = obs.write_trace(tmp_path / "trace.json", telemetry)
    trace = json.loads(path.read_text())
    events = trace["traceEvents"]
    # Perfetto essentials: complete events with µs timestamps, metadata
    # naming the parent and each worker process.
    complete = [e for e in events if e["ph"] == "X"]
    metadata = [e for e in events if e["ph"] == "M"]
    assert complete and metadata
    for event in complete:
        assert isinstance(event["ts"], (int, float))
        assert event["dur"] >= 0
        assert event["name"]
    cats = {e["cat"] for e in complete}
    assert cats == {"stage", "queue", "task"}
    task = next(e for e in complete if e["cat"] == "task")
    assert task["pid"] == 4242
    queue = next(e for e in complete if e["cat"] == "queue")
    assert queue["ts"] <= task["ts"]
    assert 4242 in {e.get("pid") for e in metadata}


# ------------------------------------------------- off-path identity

def test_telemetry_off_path_is_bit_identical(full_core, halt_program):
    """Result fields, final architectural state and all 17 RVFI columns
    of a traced fused run must be bit-identical with a session open and
    without one — telemetry observes the loops, it never touches them."""
    from repro.sim.tracing import RvfiTrace

    def traced_run():
        sim = RisspSim(full_core, halt_program, trace=True)
        sim.rtl.regfile_data[12] = 6
        result = sim.run(max_instructions=10_000)
        return sim, result

    sim_off, result_off = traced_run()
    with obs.session():
        sim_on, result_on = traced_run()
    assert (result_on.exit_code, result_on.instructions,
            result_on.cycles, result_on.halted_by) \
        == (result_off.exit_code, result_off.instructions,
            result_off.cycles, result_off.halted_by)
    assert sim_on.rtl.regfile_data == sim_off.rtl.regfile_data
    for field in RvfiTrace.FIELDS:
        assert result_on.trace.column(field) \
            == result_off.trace.column(field), field
