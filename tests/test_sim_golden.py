"""Golden ISS and memory model tests."""

import pytest

from repro.isa import assemble
from repro.sim import Memory, MemoryError_, run_program, run_program_serv


def test_memory_alignment():
    m = Memory(64)
    with pytest.raises(MemoryError_):
        m.load(2, 4, False)
    with pytest.raises(MemoryError_):
        m.store(62, 0, 4)


def test_memory_endianness():
    m = Memory(64)
    m.store(0, 0x11223344, 4)
    assert m.load(0, 1, False) == 0x44
    assert m.load(3, 1, False) == 0x11


def test_exit_code_in_a0():
    p = assemble(".text\nmain:\n li a0, 123\n ret\n")
    r = run_program(p)
    assert r.exit_code == 123 and r.halted_by == "ecall"


def test_cpi_is_one():
    p = assemble(".text\nmain:\n li a0, 1\n ret\n")
    r = run_program(p)
    assert r.cycles == r.instructions


def test_serv_cpi_about_32():
    p = assemble(""".text
main:
    li a0, 0
    li a1, 100
loop:
    addi a0, a0, 1
    bne a0, a1, loop
    ret
""")
    r = run_program_serv(p)
    assert 31.5 < r.cpi < 34


def test_instruction_limit():
    p = assemble(".text\nmain:\n j main\n")
    r = run_program(p, max_instructions=100)
    assert r.halted_by == "limit" and r.instructions == 100


def test_rvfi_trace_emitted():
    p = assemble(".text\nmain:\n li a0, 7\n ret\n")
    r = run_program(p, trace=True)
    assert len(r.trace) == r.instructions
    assert r.trace[0].rd_addr == 10 and r.trace[0].rd_wdata == 7


def test_stack_pointer_initialized():
    p = assemble(""".text
main:
    addi sp, sp, -16
    li a0, 55
    sw a0, 4(sp)
    lw a0, 4(sp)
    addi sp, sp, 16
    ret
""")
    assert run_program(p).exit_code == 55
