"""State-handling coverage for :class:`RtlSim`: the legacy read-port
settle path, ``reset()`` — including mid-run against the fused loop —
and peek/poke fault injection, exercised on every evaluator backend.

Legacy style: a :class:`RegFileSpec` read port whose data signal is *not*
combinationally assigned.  The evaluator injects the addressed register's
value right after the address signal is computed, then runs one more full
sweep so data fed to earlier-ordered signals settles.  (Legacy-port
modules are exactly the shape the fused loop refuses, so the ``fused``
parametrization also locks in that :class:`RtlSim` level behaviour stays
identical to ``compiled`` there.)

The fused-state tests at the bottom pin the PR 4 flush/refresh contract:
the generated ``run_cycles`` loads register state from ``env`` on entry
and flushes it back on exit, so pausing a run to poke ``env``/the
register file (fault injection) or to ``reset()`` must behave exactly
like the per-cycle oracles.
"""

import pytest

from repro.isa import INSTRUCTIONS, assemble
from repro.rtl import RisspSim, build_rissp
from repro.rtl.ir import Module, RegFileSpec, const
from repro.rtl.sim import RtlSim

BACKENDS = ("fused", "compiled", "interpreter")


def _legacy_module(num_regs=8):
    """A module reading the register file through a legacy (undriven-data)
    port.  ``early`` sorts before ``raddr`` in the topo walk and consumes
    the injected data, covering the second settle pass."""
    module = Module("legacy")
    addr_in = module.input("addr_in", 4)
    wdata_in = module.input("wdata_in", 8)
    we_in = module.input("we_in", 1)
    raddr = module.wire("raddr", 4)
    rdata = module.wire("rdata", 8)          # legacy: never assigned
    module.assign(raddr, addr_in)
    module.assign(module.wire("early", 8),
                  module.sig("rdata") + const(1, 8))
    module.assign(module.output("rdata_out", 8), module.sig("rdata"))
    module.assign(module.output("early_out", 8), module.sig("early"))
    module.assign(module.wire("waddr", 4), addr_in)
    module.assign(module.wire("we", 1), we_in)
    module.assign(module.wire("wdata", 8), wdata_in)
    module.regfile = RegFileSpec(
        name="regs", num_regs=num_regs, width=8,
        read_ports=[("raddr", "rdata")],
        write_port=("we", "waddr", "wdata"))
    module.check()
    return module


@pytest.mark.parametrize("backend", BACKENDS)
def test_legacy_read_port_reads_written_values(backend):
    sim = RtlSim(_legacy_module(), backend=backend)
    for reg in range(1, 8):
        sim.set_inputs(addr_in=reg, wdata_in=0x10 + reg, we_in=1)
        sim.eval_comb()
        sim.tick()
    sim.set_inputs(we_in=0)
    for reg in range(1, 8):
        sim.set_inputs(addr_in=reg)
        sim.eval_comb()
        assert sim.get("rdata_out") == 0x10 + reg
        # The settle pass must propagate injected data to earlier-ordered
        # consumers within the same evaluation.
        assert sim.get("early_out") == 0x11 + reg


@pytest.mark.parametrize("backend", BACKENDS)
def test_legacy_read_port_x0_and_address_wrap(backend):
    sim = RtlSim(_legacy_module(num_regs=8), backend=backend)
    sim.set_inputs(addr_in=3, wdata_in=0x77, we_in=1)
    sim.eval_comb()
    sim.tick()
    sim.set_inputs(we_in=0, addr_in=0)
    sim.eval_comb()
    assert sim.get("rdata_out") == 0          # x0 always reads 0
    sim.set_inputs(addr_in=8 + 3)             # wraps modulo num_regs
    sim.eval_comb()
    assert sim.get("rdata_out") == 0x77


@pytest.mark.parametrize("backend", BACKENDS)
def test_legacy_write_to_x0_ignored(backend):
    sim = RtlSim(_legacy_module(), backend=backend)
    sim.set_inputs(addr_in=0, wdata_in=0xFF, we_in=1)
    sim.eval_comb()
    sim.tick()
    assert sim.regfile_data[0] == 0
    sim.set_inputs(addr_in=0, we_in=0)
    sim.eval_comb()
    assert sim.get("rdata_out") == 0


def test_legacy_cse_does_not_cache_stale_injection_data():
    """Regression: a subexpression reading one legacy port's data signal,
    shared between an assign that sorts *before* that port's injection and
    a second port's address computed *after* it, must not be hoisted into
    a temp by the compiled backend's CSE — the temp would freeze the
    pre-injection value and steer the second port to the wrong register."""
    from repro.rtl.ir import Binary, Op, Slice

    module = Module("legacy2")
    module.wire("rdata1", 8)
    module.wire("rdata2", 8)
    addr1_in = module.input("addr1_in", 3)
    module.assign(module.wire("addr1", 3), addr1_in)
    # Shared subtree: rdata1 + 1 (the same structural node twice).
    shared = Binary(Op.ADD, module.sig("rdata1"), const(1, 8))
    module.assign(module.wire("a_early", 8), shared)    # sorts before addr1
    module.assign(module.wire("addr2", 3), Slice(shared, 2, 0))
    module.assign(module.output("out1", 8), module.sig("rdata1"))
    module.assign(module.output("out2", 8), module.sig("rdata2"))
    module.regfile = RegFileSpec(
        name="regs", num_regs=8, width=8,
        read_ports=[("addr1", "rdata1"), ("addr2", "rdata2")])
    module.check()

    sims = [RtlSim(module, backend=backend) for backend in BACKENDS]
    for sim in sims:
        for index, value in enumerate((0, 0x11, 0x12, 0x13, 0x14, 0x15,
                                       0x16, 0x17)):
            sim.regfile_data[index] = value
    for addr1 in range(8):
        for sim in sims:
            sim.set_inputs(addr1_in=addr1)
            sim.eval_comb()
        interp = sims[-1]
        for compiled in sims[:-1]:
            assert compiled.env == interp.env, (
                f"addr1={addr1} backend={compiled.backend}: " + repr(sorted(
                    (k, compiled.env.get(k), interp.env.get(k))
                    for k in set(compiled.env) | set(interp.env)
                    if compiled.env.get(k) != interp.env.get(k))))


@pytest.mark.parametrize("backend", BACKENDS)
def test_reset_restores_registers_and_clears_regfile(backend):
    core = build_rissp([d.mnemonic for d in INSTRUCTIONS], reset_pc=0x40)
    sim = RtlSim(core, backend=backend)
    assert sim.get("pc") == 0x40              # reset value applied at init
    # Run a couple of real instructions: addi x5, x0, 9 then addi x6, x5, 1.
    for word in (0x00900293, 0x00128313):
        sim.set_inputs(imem_rdata=word, dmem_rdata=0)
        sim.eval_comb()
        sim.tick()
    assert sim.get("pc") == 0x48
    assert sim.regfile_data[5] == 9 and sim.regfile_data[6] == 10
    sim.reset()
    assert sim.get("pc") == 0x40              # reset value, not 0
    assert sim.regfile_data == [0] * len(sim.regfile_data)
    for port in core.inputs():
        assert sim.env[port.name] == 0        # inputs cleared
    # The partial run must not leak into a fresh run after reset().
    sim.set_inputs(imem_rdata=0x00900293, dmem_rdata=0)
    sim.eval_comb()
    sim.tick()
    assert sim.get("pc") == 0x44 and sim.regfile_data[5] == 9


@pytest.mark.parametrize("backend", BACKENDS)
def test_reset_reproduces_identical_run(backend):
    """A program rerun after reset() must retire identically (same exit
    code), proving no hidden state survives reset."""
    core = build_rissp([d.mnemonic for d in INSTRUCTIONS])
    prog = assemble(""".text
main:
    li a0, 3
    addi a0, a0, 4
    ret
""")
    first = RisspSim(core, prog, backend=backend).run(1_000)
    sim = RisspSim(core, prog, backend=backend)
    sim.rtl.reset()
    # RisspSim seeds pc and the ABI registers at construction; reapply
    # after the reset exactly as the constructor does.
    from repro.sim.golden import abi_initial_regs
    sim.rtl.env["pc"] = prog.entry
    for index, value in abi_initial_regs(sim.memory.size).items():
        sim.rtl.regfile_data[index] = value
    second = sim.run(1_000)
    assert (first.exit_code, first.halted_by, first.instructions) == \
        (second.exit_code, second.halted_by, second.instructions)


# ------------------------------------------------ fused state coherency

_COUNTED = """.text
main:
    li a0, 0
    li a1, 200
loop:
    addi a0, a0, 1
    bne a0, a1, loop
    ret
"""


def _paused_run(backend, poke):
    """Run 20 instructions, apply ``poke(sim)``, run to halt; the final
    architectural outcome must not depend on the backend."""
    core = build_rissp([d.mnemonic for d in INSTRUCTIONS])
    sim = RisspSim(core, assemble(_COUNTED), backend=backend)
    first = sim.run(20)
    assert first.halted_by == "limit" and first.instructions == 20
    poke(sim)
    return sim.run(5_000)


@pytest.mark.parametrize("backend", BACKENDS)
def test_poke_regfile_between_runs_matches_oracle(backend):
    """Fault injection into the register file while paused: the fused
    loop must pick the poked value up from the shared array exactly like
    the per-cycle backends (its state is refreshed on entry)."""
    def poke(sim):
        sim.rtl.regfile_data[10] = 190          # a0: skip most iterations

    result = _paused_run(backend, poke)
    reference = _paused_run("interpreter", poke)
    assert (result.exit_code, result.instructions, result.halted_by) == \
        (reference.exit_code, reference.instructions, reference.halted_by)
    assert result.instructions < 100            # the poke really applied


@pytest.mark.parametrize("backend", BACKENDS)
def test_poke_pc_between_runs_matches_oracle(backend):
    """Poking env['pc'] while paused redirects the next fused chunk —
    registers are reloaded from env on every run_cycles entry."""
    def poke(sim):
        sim.rtl.env["pc"] = 0x10                # the ret site

    result = _paused_run(backend, poke)
    reference = _paused_run("interpreter", poke)
    assert (result.exit_code, result.instructions, result.halted_by) == \
        (reference.exit_code, reference.instructions, reference.halted_by)


@pytest.mark.parametrize("backend", BACKENDS)
def test_reset_mid_run_matches_oracle(backend):
    """RtlSim.reset() between two run() calls: the second run must replay
    the program from scratch on every backend (fused included — the loop
    must not resurrect pre-reset register locals)."""
    from repro.sim.golden import abi_initial_regs

    core = build_rissp([d.mnemonic for d in INSTRUCTIONS])
    prog = assemble(_COUNTED)

    def run_with_reset(backend):
        sim = RisspSim(core, prog, backend=backend)
        sim.run(17)                              # stop mid-loop
        sim.rtl.reset()
        sim.rtl.env["pc"] = prog.entry
        for index, value in abi_initial_regs(sim.memory.size).items():
            sim.rtl.regfile_data[index] = value
        return sim.run(5_000)

    result = run_with_reset(backend)
    reference = run_with_reset("interpreter")
    assert result.halted_by == "ecall"
    assert (result.exit_code, result.instructions, result.halted_by) == \
        (reference.exit_code, reference.instructions, reference.halted_by)


@pytest.mark.parametrize("backend", BACKENDS)
def test_env_coherent_after_partial_run(backend):
    """After any run() the register state visible through get()/env must
    agree across backends, and a manual set_inputs/eval_comb probe on the
    paused simulator must produce identical combinational signals — the
    fused loop's exit flush + re-settle at work."""
    core = build_rissp([d.mnemonic for d in INSTRUCTIONS])
    sims = {b: RisspSim(core, assemble(_COUNTED), backend=b)
            for b in BACKENDS}
    for sim in sims.values():
        sim.run(25)
    pcs = {b: sim.rtl.get("pc") for b, sim in sims.items()}
    assert len(set(pcs.values())) == 1, pcs
    regs = {b: list(sim.rtl.regfile_data) for b, sim in sims.items()}
    assert regs["fused"] == regs["compiled"] == regs["interpreter"]
    # Drive one cycle by hand through the per-cycle API on all three.
    word = sims["fused"].memory.fetch(pcs["fused"])
    probes = {}
    for backend, sim in sims.items():
        sim.rtl.set_inputs(imem_rdata=word, dmem_rdata=0)
        sim.rtl.eval_comb()
        probes[backend] = {name: sim.rtl.get(name)
                           for name in ("next_pc", "halt", "illegal",
                                        "rf_we", "rf_waddr", "rf_wdata",
                                        "dmem_re", "dmem_wstrb")}
    assert probes["fused"] == probes["compiled"] == probes["interpreter"]
