"""State-handling coverage for :class:`RtlSim`: the legacy read-port
settle path and ``reset()`` — previously untested branches of ``sim.py`` —
exercised on both evaluator backends.

Legacy style: a :class:`RegFileSpec` read port whose data signal is *not*
combinationally assigned.  The evaluator injects the addressed register's
value right after the address signal is computed, then runs one more full
sweep so data fed to earlier-ordered signals settles.
"""

import pytest

from repro.isa import INSTRUCTIONS, assemble
from repro.rtl import RisspSim, build_rissp
from repro.rtl.ir import Module, RegFileSpec, const
from repro.rtl.sim import RtlSim

BACKENDS = ("compiled", "interpreter")


def _legacy_module(num_regs=8):
    """A module reading the register file through a legacy (undriven-data)
    port.  ``early`` sorts before ``raddr`` in the topo walk and consumes
    the injected data, covering the second settle pass."""
    module = Module("legacy")
    addr_in = module.input("addr_in", 4)
    wdata_in = module.input("wdata_in", 8)
    we_in = module.input("we_in", 1)
    raddr = module.wire("raddr", 4)
    rdata = module.wire("rdata", 8)          # legacy: never assigned
    module.assign(raddr, addr_in)
    module.assign(module.wire("early", 8),
                  module.sig("rdata") + const(1, 8))
    module.assign(module.output("rdata_out", 8), module.sig("rdata"))
    module.assign(module.output("early_out", 8), module.sig("early"))
    module.assign(module.wire("waddr", 4), addr_in)
    module.assign(module.wire("we", 1), we_in)
    module.assign(module.wire("wdata", 8), wdata_in)
    module.regfile = RegFileSpec(
        name="regs", num_regs=num_regs, width=8,
        read_ports=[("raddr", "rdata")],
        write_port=("we", "waddr", "wdata"))
    module.check()
    return module


@pytest.mark.parametrize("backend", BACKENDS)
def test_legacy_read_port_reads_written_values(backend):
    sim = RtlSim(_legacy_module(), backend=backend)
    for reg in range(1, 8):
        sim.set_inputs(addr_in=reg, wdata_in=0x10 + reg, we_in=1)
        sim.eval_comb()
        sim.tick()
    sim.set_inputs(we_in=0)
    for reg in range(1, 8):
        sim.set_inputs(addr_in=reg)
        sim.eval_comb()
        assert sim.get("rdata_out") == 0x10 + reg
        # The settle pass must propagate injected data to earlier-ordered
        # consumers within the same evaluation.
        assert sim.get("early_out") == 0x11 + reg


@pytest.mark.parametrize("backend", BACKENDS)
def test_legacy_read_port_x0_and_address_wrap(backend):
    sim = RtlSim(_legacy_module(num_regs=8), backend=backend)
    sim.set_inputs(addr_in=3, wdata_in=0x77, we_in=1)
    sim.eval_comb()
    sim.tick()
    sim.set_inputs(we_in=0, addr_in=0)
    sim.eval_comb()
    assert sim.get("rdata_out") == 0          # x0 always reads 0
    sim.set_inputs(addr_in=8 + 3)             # wraps modulo num_regs
    sim.eval_comb()
    assert sim.get("rdata_out") == 0x77


@pytest.mark.parametrize("backend", BACKENDS)
def test_legacy_write_to_x0_ignored(backend):
    sim = RtlSim(_legacy_module(), backend=backend)
    sim.set_inputs(addr_in=0, wdata_in=0xFF, we_in=1)
    sim.eval_comb()
    sim.tick()
    assert sim.regfile_data[0] == 0
    sim.set_inputs(addr_in=0, we_in=0)
    sim.eval_comb()
    assert sim.get("rdata_out") == 0


def test_legacy_cse_does_not_cache_stale_injection_data():
    """Regression: a subexpression reading one legacy port's data signal,
    shared between an assign that sorts *before* that port's injection and
    a second port's address computed *after* it, must not be hoisted into
    a temp by the compiled backend's CSE — the temp would freeze the
    pre-injection value and steer the second port to the wrong register."""
    from repro.rtl.ir import Binary, Op, Slice

    module = Module("legacy2")
    module.wire("rdata1", 8)
    module.wire("rdata2", 8)
    addr1_in = module.input("addr1_in", 3)
    module.assign(module.wire("addr1", 3), addr1_in)
    # Shared subtree: rdata1 + 1 (the same structural node twice).
    shared = Binary(Op.ADD, module.sig("rdata1"), const(1, 8))
    module.assign(module.wire("a_early", 8), shared)    # sorts before addr1
    module.assign(module.wire("addr2", 3), Slice(shared, 2, 0))
    module.assign(module.output("out1", 8), module.sig("rdata1"))
    module.assign(module.output("out2", 8), module.sig("rdata2"))
    module.regfile = RegFileSpec(
        name="regs", num_regs=8, width=8,
        read_ports=[("addr1", "rdata1"), ("addr2", "rdata2")])
    module.check()

    sims = [RtlSim(module, backend=backend) for backend in BACKENDS]
    for sim in sims:
        for index, value in enumerate((0, 0x11, 0x12, 0x13, 0x14, 0x15,
                                       0x16, 0x17)):
            sim.regfile_data[index] = value
    for addr1 in range(8):
        for sim in sims:
            sim.set_inputs(addr1_in=addr1)
            sim.eval_comb()
        compiled, interp = sims
        assert compiled.env == interp.env, (
            f"addr1={addr1}: " + repr(sorted(
                (k, compiled.env.get(k), interp.env.get(k))
                for k in set(compiled.env) | set(interp.env)
                if compiled.env.get(k) != interp.env.get(k))))


@pytest.mark.parametrize("backend", BACKENDS)
def test_reset_restores_registers_and_clears_regfile(backend):
    core = build_rissp([d.mnemonic for d in INSTRUCTIONS], reset_pc=0x40)
    sim = RtlSim(core, backend=backend)
    assert sim.get("pc") == 0x40              # reset value applied at init
    # Run a couple of real instructions: addi x5, x0, 9 then addi x6, x5, 1.
    for word in (0x00900293, 0x00128313):
        sim.set_inputs(imem_rdata=word, dmem_rdata=0)
        sim.eval_comb()
        sim.tick()
    assert sim.get("pc") == 0x48
    assert sim.regfile_data[5] == 9 and sim.regfile_data[6] == 10
    sim.reset()
    assert sim.get("pc") == 0x40              # reset value, not 0
    assert sim.regfile_data == [0] * len(sim.regfile_data)
    for port in core.inputs():
        assert sim.env[port.name] == 0        # inputs cleared
    # The partial run must not leak into a fresh run after reset().
    sim.set_inputs(imem_rdata=0x00900293, dmem_rdata=0)
    sim.eval_comb()
    sim.tick()
    assert sim.get("pc") == 0x44 and sim.regfile_data[5] == 9


@pytest.mark.parametrize("backend", BACKENDS)
def test_reset_reproduces_identical_run(backend):
    """A program rerun after reset() must retire identically (same exit
    code), proving no hidden state survives reset."""
    core = build_rissp([d.mnemonic for d in INSTRUCTIONS])
    prog = assemble(""".text
main:
    li a0, 3
    addi a0, a0, 4
    ret
""")
    first = RisspSim(core, prog, backend=backend).run(1_000)
    sim = RisspSim(core, prog, backend=backend)
    sim.rtl.reset()
    # RisspSim seeds pc and the ABI registers at construction; reapply
    # after the reset exactly as the constructor does.
    from repro.sim.golden import abi_initial_regs
    sim.rtl.env["pc"] = prog.entry
    for index, value in abi_initial_regs(sim.memory.size).items():
        sim.rtl.regfile_data[index] = value
    second = sim.run(1_000)
    assert (first.exit_code, first.halted_by, first.instructions) == \
        (second.exit_code, second.halted_by, second.instructions)
