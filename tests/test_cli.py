"""``python -m repro`` CLI tests: dataclass-driven parsing + stage runs.

The parser is *generated* from :class:`repro.cli.FarmConfig` — these
tests pin the mapping (field -> option name, tuple -> multi-value, int ->
hex-capable) and smoke every stage at small limits through ``main``,
asserting exit codes rather than output details.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import STAGES, FarmConfig, build_parser, main, parse_config, run
from repro.verify.fuzz import FUZZ_BASE_SEED


# ----------------------------------------------------------- parsing

def test_defaults_round_trip_through_the_parser():
    config = parse_config([])
    assert config == FarmConfig()
    assert config.stages == ("cosim",)
    assert config.workers == 1
    assert config.fuzz_seed == FUZZ_BASE_SEED


def test_every_config_field_is_a_cli_option():
    """The declarative contract: adding a FarmConfig field IS adding a
    CLI option — nothing is wired twice, nothing can be forgotten."""
    import dataclasses

    parser = build_parser()
    option_strings = {s for action in parser._actions
                      for s in action.option_strings}
    destinations = {action.dest for action in parser._actions}
    for spec in dataclasses.fields(FarmConfig):
        assert spec.name in destinations
        if not spec.metadata.get("positional"):
            assert "--" + spec.name.replace("_", "-") in option_strings


def test_tuple_fields_take_multiple_values():
    config = parse_config(["cosim", "mutation",
                           "--backends", "fused", "compiled",
                           "--workloads", "crc32",
                           "--bench-workers", "1", "2"])
    assert config.stages == ("cosim", "mutation")
    assert config.backends == ("fused", "compiled")
    assert config.workloads == ("crc32",)
    assert config.bench_workers == (1, 2)


def test_tuple_options_with_zero_values_yield_empty_tuples():
    """Regression (docstring promise): ``--workloads`` with no values
    means "fuzz chunks only" — the parsed config must carry an *empty*
    tuple, never silently fall back to the default pair.  Same for every
    tuple option."""
    config = parse_config(["cosim", "--workloads"])
    assert config.workloads == ()
    assert config.backends == ("fused",)  # untouched options keep defaults
    config = parse_config(["cosim", "--backends"])
    assert config.backends == ()
    assert config.workloads == ("uart_selftest", "crc32")
    config = parse_config(["bench", "--bench-workers"])
    assert config.bench_workers == ()
    # Empty *positional* stages still mean the default stage list.
    assert parse_config(["--workloads"]).stages == ("cosim",)


def test_empty_workloads_run_fuzz_chunks_only(capsys):
    code = main(["cosim", "--workloads", "--fuzz-chunks", "1"])
    err = capsys.readouterr().err
    assert code == 0
    assert "cosim: 1/1 clean" in err
    assert "cosim:uart_selftest" not in err


def test_zero_task_stages_fail_instead_of_crashing_or_passing(capsys):
    """Regression sweep for zero-value tuples downstream of the parser:
    cosim with nothing to verify used to exit 0 claiming "0/0 clean" (a
    vacuous pass), mutation with zero backends crashed on its empty
    verdict rows, and bench with zero worker counts crashed indexing the
    serial baseline.  All three must fail cleanly with exit code 1."""
    assert main(["cosim", "--backends"]) == 1
    assert "nothing verified" in capsys.readouterr().err
    assert main(["cosim", "--workloads"]) == 1  # no fuzz chunks either
    assert "nothing verified" in capsys.readouterr().err
    assert main(["mutation", "--backends"]) == 1
    assert "nothing verified" in capsys.readouterr().err
    assert main(["bench", "--bench-workers"]) == 1
    assert "worker count" in capsys.readouterr().err


def test_int_options_accept_hex():
    config = parse_config(["cosim", "--fuzz-seed", "0xDEADBEEF",
                           "--workers", "4"])
    assert config.fuzz_seed == 0xDEADBEEF
    assert config.workers == 4


def test_unknown_stage_is_rejected():
    with pytest.raises(SystemExit):
        parse_config(["synthesize"])


def test_stage_order_is_preserved():
    config = parse_config(list(reversed(STAGES)))
    assert config.stages == tuple(reversed(STAGES))


# -------------------------------------------------------- stage smoke

def test_cosim_stage_exit_zero(capsys):
    code = main(["cosim", "--workloads", "uart_selftest",
                 "--fuzz-chunks", "1"])
    captured = capsys.readouterr()
    assert code == 0
    assert "cosim: 2/2 clean" in captured.err
    assert "all stages passed" in captured.err
    # Banner discipline (PR 8): progress goes to stderr, stdout stays
    # machine-clean so `python -m repro ... > pipeline.json` style
    # plumbing never has to strip human chatter.
    assert captured.out == ""


def test_mutation_stage_exit_zero(capsys):
    code = main(["mutation", "--mutation-limit", "6",
                 "--mutation-budget", "400"])
    err = capsys.readouterr().err
    assert code == 0
    assert "mutation: " in err and "0 backend disagreements" in err


def test_compliance_stage_exit_zero(capsys):
    code = main(["compliance"])
    err = capsys.readouterr().err
    assert code == 0
    assert "-> PASS" in err


def test_fleet_stage_writes_validated_artifact(tmp_path, capsys,
                                               monkeypatch):
    """``python -m repro fleet`` batches instances, proves sampled
    equivalence, and writes a schema-valid BENCH_fleet_throughput.json."""
    from repro.core.bench_schema import validate_artifact_file

    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    code = main(["fleet", "--fleet-instances", "48"])
    err = capsys.readouterr().err
    assert code == 0
    assert "speedup vs single" in err
    artifact = tmp_path / "BENCH_fleet_throughput.json"
    assert artifact.exists()
    assert validate_artifact_file(artifact) == []
    document = json.loads(artifact.read_text())
    assert document["metrics"]["instances"] == 48
    assert document["metrics"]["retirements"] > 0


def test_fleet_stage_rejects_zero_instances(capsys):
    assert main(["fleet", "--fleet-instances", "0"]) == 1
    assert "at least one instance" in capsys.readouterr().err


def test_json_out_records_stage_results(tmp_path, capsys):
    out_path = tmp_path / "results.json"
    code = main(["cosim", "--workloads", "uart_selftest",
                 "--json-out", str(out_path)])
    assert code == 0
    results = json.loads(out_path.read_text())
    assert results["cosim"]["ok"] is True
    assert results["cosim"]["verdicts"] == {"cosim:uart_selftest": None}
    capsys.readouterr()


def test_failing_stage_exits_nonzero(capsys, monkeypatch):
    import repro.cli as cli

    monkeypatch.setitem(cli._STAGE_RUNNERS, "cosim",
                        lambda config: (False, {"verdicts": {}}))
    code = run(parse_config(["cosim"]))
    err = capsys.readouterr().err
    assert code == 1
    assert "FAILED stages: cosim" in err


def test_raising_stage_still_writes_json_out(tmp_path, capsys,
                                             monkeypatch):
    """Regression (PR 8): a stage that *raised* used to unwind straight
    out of ``run()``, so ``--json-out`` was never written and a CI
    pipeline tallying results saw a missing file instead of a recorded
    failure.  Now every stage runs under its own catch: the exception is
    recorded (with the replayable task id for farm failures), later
    stages still run, and the JSON report is always written."""
    import repro.cli as cli
    from repro.farm import FarmTaskError

    def explode(config):
        raise FarmTaskError("farm task 'fuzz[007]' failed: boom",
                            task_id="fuzz[007]",
                            description="fuzz seed=0x1234")

    monkeypatch.setitem(cli._STAGE_RUNNERS, "cosim", explode)
    out_path = tmp_path / "results.json"
    code = run(parse_config(["cosim", "fleet", "--fleet-instances", "16",
                             "--json-out", str(out_path)]))
    err = capsys.readouterr().err
    assert code == 1
    assert "FAILED stages: cosim" in err
    results = json.loads(out_path.read_text())
    assert results["cosim"]["ok"] is False
    assert results["cosim"]["task_id"] == "fuzz[007]"
    assert "boom" in results["cosim"]["error"]
    # The stage after the explosion still ran and was recorded.
    assert results["fleet"]["ok"] is True


def test_telemetry_flags_write_manifest_and_trace(tmp_path, capsys):
    """The acceptance surface: ``--telemetry``/``--trace-out`` produce a
    schema-valid manifest with the counter families populated and a
    Chrome trace_event document."""
    from repro import obs

    manifest_path = tmp_path / "run.json"
    trace_path = tmp_path / "trace.json"
    code = main(["cosim", "--workloads", "uart_selftest",
                 "--telemetry", str(manifest_path),
                 "--trace-out", str(trace_path)])
    capsys.readouterr()
    assert code == 0
    document = json.loads(manifest_path.read_text())
    assert obs.validate_manifest(document) == []
    counters = document["counters"]
    assert set(counters) == set(obs.COUNTERS)
    assert counters["fused.runs"] > 0
    # The probe guarantees every counter family reports even when the
    # selected stages never touch it.  (>= because an earlier in-process
    # test may already have warmed the riscof memo, turning the probe's
    # cold lookup into a second hit.)
    assert counters["riscof.sig_lookup"] == 2
    assert counters["riscof.sig_memo_hit"] >= 1
    assert counters["fleet.diverge.mret"] == 1
    assert [s["name"] for s in document["stages"]] == \
        ["cosim", "telemetry_probe"]
    trace = json.loads(trace_path.read_text())
    names = {event["ph"] for event in trace["traceEvents"]}
    assert names == {"M", "X"}


def test_module_entrypoint_help(tmp_path):
    """``python -m repro --help`` must work (wires __main__ -> cli)."""
    import os
    import pathlib
    import subprocess
    import sys

    root = pathlib.Path(__file__).resolve().parents[1]
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True, text=True,
        env={**os.environ, "PYTHONPATH": str(root / "src")},
        cwd=root)
    assert proc.returncode == 0
    assert "--workers" in proc.stdout and "--fuzz-seed" in proc.stdout
