"""Disassembler round-trip: assemble(disassemble(word)) == word.

The canonical-text rendering of :mod:`repro.isa.disassembler` must be
legal assembler input that encodes back to the identical word, for
*every* instruction in the full table (base ISA + the PR 3 Zicsr/system
extension) across its legal operand space.  Exhaustive over mnemonics and
corner operands, plus hypothesis-randomized operand sweeps per format.
"""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    ALL_INSTRUCTIONS,
    Format,
    Instruction,
    assemble,
    decode,
    encode,
)
from repro.isa.disassembler import disassemble_word, format_instruction

#: Representative operand corners per field kind (RV32E register space).
_REGS = (0, 1, 2, 10, 15)
_IMM12 = (-2048, -33, -1, 0, 1, 2047)
_BOFF = (-4096, -8, 0, 8, 4094 & ~1)
_JOFF = (-(1 << 20), -8, 0, 2048, (1 << 20) - 2)
_UFIELD = (0, 1, 0x80000, 0xFFFFF, 0x12345)
_SHAMT = (0, 1, 13, 31)
_CSRS = (0x300, 0x305, 0x341, 0x344, 0x7FF, 0xFFF)
_UIMM5 = (0, 1, 8, 21, 31)


def _operand_cases(d):
    """Yield legal Instruction kwargs covering the definition's fields."""
    if d.fmt is Format.R:
        for rd in _REGS:
            for rs1 in _REGS[:3]:
                for rs2 in _REGS[2:]:
                    yield dict(rd=rd, rs1=rs1, rs2=rs2)
    elif d.is_shift_imm:
        for rd in _REGS:
            for imm in _SHAMT:
                yield dict(rd=rd, rs1=3, imm=imm)
    elif d.fmt is Format.I:
        for rd in _REGS:
            for imm in _IMM12:
                yield dict(rd=rd, rs1=5, imm=imm)
    elif d.fmt is Format.S:
        for rs2 in _REGS:
            for imm in _IMM12:
                yield dict(rs1=6, rs2=rs2, imm=imm)
    elif d.fmt is Format.B:
        for imm in _BOFF:
            yield dict(rs1=7, rs2=8, imm=imm)
    elif d.fmt is Format.U:
        for rd in _REGS:
            for field in _UFIELD:
                from repro.isa import sign_extend
                yield dict(rd=rd, imm=sign_extend(field << 12, 32))
    elif d.fmt is Format.J:
        for rd in _REGS:
            for imm in _JOFF:
                yield dict(rd=rd, imm=imm)
    elif d.fmt is Format.CSR:
        sources = _UIMM5 if d.csr_uimm else _REGS
        for csr in _CSRS:
            for source in sources:
                yield dict(rd=9, rs1=source, imm=csr)
    else:   # SYS: no operands
        yield dict()


def _roundtrip(word: int) -> int:
    """Disassemble at address 0 and reassemble at text base 0."""
    text = disassemble_word(word, addr=0)
    program = assemble(f".text\n    {text}\n", entry_symbol="main")
    assert len(program.text_words) == 1, text
    return program.text_words[0]


@pytest.mark.parametrize("d", ALL_INSTRUCTIONS, ids=lambda d: d.mnemonic)
def test_roundtrip_exhaustive_over_table(d):
    for kwargs in _operand_cases(d):
        instr = Instruction(d.mnemonic, **kwargs)
        word = encode(instr, num_regs=16)
        assert _roundtrip(word) == word, format_instruction(instr)
        # and the decoder agrees with the original operands
        assert decode(word) == instr


def test_new_system_opcodes_render_canonically():
    assert disassemble_word(0x30200073) == "mret"
    assert disassemble_word(0x10500073) == "wfi"
    assert disassemble_word(
        encode(Instruction("csrrw", rd=10, rs1=11, imm=0x305))) \
        == "csrrw a0, mtvec, a1"
    assert disassemble_word(
        encode(Instruction("csrrsi", rd=0, rs1=21, imm=0x340))) \
        == "csrrsi zero, mscratch, 21"
    # unnamed CSR addresses render numerically and still round-trip
    word = encode(Instruction("csrrc", rd=1, rs1=2, imm=0x7C0))
    assert "0x7c0" in disassemble_word(word)
    assert _roundtrip(word) == word


regs = st.integers(0, 15)


@given(rd=regs, rs1=regs, imm=st.integers(0, 4095))
def test_roundtrip_csr_random(rd, rs1, imm):
    word = encode(Instruction("csrrs", rd=rd, rs1=rs1, imm=imm))
    assert _roundtrip(word) == word


@given(rd=regs, uimm=st.integers(0, 31), imm=st.integers(0, 4095))
def test_roundtrip_csr_imm_random(rd, uimm, imm):
    word = encode(Instruction("csrrci", rd=rd, rs1=uimm, imm=imm))
    assert _roundtrip(word) == word


@given(rs1=regs, rs2=regs,
       imm=st.integers(-2048, 2047).map(lambda x: x * 2))
def test_roundtrip_branch_random(rs1, rs2, imm):
    word = encode(Instruction("bgeu", rs1=rs1, rs2=rs2, imm=imm))
    assert _roundtrip(word) == word


@given(rd=regs, imm=st.integers(-(1 << 19), (1 << 19) - 1)
       .map(lambda x: x * 2))
def test_roundtrip_jal_random(rd, imm):
    word = encode(Instruction("jal", rd=rd, imm=imm))
    assert _roundtrip(word) == word


def test_undecodable_words_render_as_data():
    assert disassemble_word(0xFFFFFFFF) == ".word 0xffffffff"
