"""Instruction hardware block tests (Table 2 contract + semantics)."""

import pytest

from repro.isa import INSTRUCTIONS
from repro.rtl import build_block
from repro.verify import check_block, run_testbench

ALL = [d.mnemonic for d in INSTRUCTIONS]


@pytest.mark.parametrize("mnemonic", ALL)
def test_block_builds_and_checks(mnemonic):
    block = build_block(mnemonic)
    assert block.meta["mnemonic"] == mnemonic
    block.check()


@pytest.mark.parametrize("mnemonic", ALL)
def test_block_testbench_passes(mnemonic):
    result = run_testbench(build_block(mnemonic))
    assert result.passed, result.failures[:3]


@pytest.mark.parametrize("mnemonic", ["add", "sub", "sll", "srl", "sra",
                                      "slt", "sltu", "xor", "or", "and"])
def test_formal_alu_blocks(mnemonic):
    report = check_block(build_block(mnemonic))
    assert report.proven, report.violations[:3]


@pytest.mark.parametrize("mnemonic", ["beq", "bne", "blt", "bge", "bltu",
                                      "bgeu", "jal", "jalr", "lui",
                                      "auipc"])
def test_formal_control_blocks(mnemonic):
    report = check_block(build_block(mnemonic))
    assert report.proven, report.violations[:3]


@pytest.mark.parametrize("mnemonic", ["lb", "lbu", "lh", "lhu", "lw",
                                      "sb", "sh", "sw"])
def test_formal_memory_blocks(mnemonic):
    report = check_block(build_block(mnemonic))
    assert report.proven, report.violations[:3]


def test_branch_block_has_no_rd_port():
    block = build_block("beq")
    assert "rdest_we" not in block.ports
    assert "rdest_data" not in block.ports


def test_store_block_ports():
    block = build_block("sb")
    assert "dmem_wstrb" in block.ports
    assert "rdest_we" not in block.ports


def test_load_block_ports():
    block = build_block("lw")
    assert "dmem_re" in block.ports and "dmem_rdata" in block.ports


def test_sys_block_halts():
    block = build_block("ecall")
    assert "halt" in block.ports
