"""ModularEX + RISSP integration tests."""

import pytest

from repro.isa import INSTRUCTIONS, assemble
from repro.rtl import (
    RisspSim, build_modularex, build_rissp, cosimulate, default_library,
    emit_module,
)
from repro.sim import SimulationError, run_program

FULL = [d.mnemonic for d in INSTRUCTIONS]

PROGRAM = """
.data
nums: .word 3, -9, 27, 81, 0x7FFFFFFF
.text
main:
    la   a1, nums
    li   a2, 5
    li   a0, 0
loop:
    beqz a2, done
    lw   a3, 0(a1)
    add  a0, a0, a3
    srai a3, a3, 3
    xor  a0, a0, a3
    addi a1, a1, 4
    addi a2, a2, -1
    j    loop
done:
    sb   a0, 0(a1)
    lbu  a4, 0(a1)
    sub  a0, a0, a4
    ret
"""


def test_modularex_meta_and_illegal():
    ex = build_modularex(["add", "addi", "ecall"], default_library())
    assert ex.meta["mnemonics"] == ["add", "addi", "ecall"]
    assert "illegal" in ex.ports


def test_full_core_cosimulates():
    core = build_rissp(FULL, name="rv32e")
    assert cosimulate(core, assemble(PROGRAM)) is None


def test_subset_core_runs_program():
    prog = assemble(PROGRAM)
    from repro.core import extract_subset
    subset = extract_subset(prog) + ["ecall"]
    core = build_rissp(subset, name="custom")
    r = RisspSim(core, prog).run()
    assert r.exit_code == run_program(prog).exit_code


def test_unsupported_instruction_traps():
    core = build_rissp(["addi", "ecall"], name="tiny")
    prog = assemble(".text\nmain:\n add a0, a0, a0\n ret\n")
    with pytest.raises(SimulationError):
        RisspSim(core, prog).run()


def test_single_cycle_timing():
    core = build_rissp(FULL)
    prog = assemble(PROGRAM)
    r = RisspSim(core, prog).run()
    assert r.cycles == r.instructions


def test_rissp_emits_systemverilog():
    core = build_rissp(["addi", "jal", "ecall"], name="sv_check")
    text = emit_module(core)
    assert "module sv_check" in text and "regs [0:15]" in text


def test_rvfi_trace_from_rtl():
    from repro.verify import check_trace
    core = build_rissp(FULL)
    prog = assemble(PROGRAM)
    sim = RisspSim(core, prog, trace=True)
    r = sim.run()
    report = check_trace(r.trace, initial_regs={2: 0x20000 - 16,
                                                1: 0xFFF0})
    assert report.passed, report.errors[:3]
