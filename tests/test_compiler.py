"""MicroC compiler tests: language features, opt levels, correctness."""

import pytest

from repro.compiler import (
    LexError, ParseError, SemaError, compile_to_assembly,
    compile_to_program, normalize_level,
)
from repro.sim import run_program

LEVELS = ("O0", "O1", "O2", "O3", "Oz")


def run(src, level="O2", maxi=4_000_000):
    return run_program(compile_to_program(src, level).program,
                       max_instructions=maxi).exit_code


def s32(v):
    v &= 0xFFFFFFFF
    return v - (1 << 32) if v & 0x80000000 else v


def test_arithmetic_and_precedence():
    assert run("int main(void){ return 2 + 3 * 4 - 1; }") == 13


def test_division_semantics_trunc_toward_zero():
    assert s32(run("int main(void){ return (-7) / 2; }")) == -3
    assert s32(run("int main(void){ return (-7) % 2; }")) == -1


def test_unsigned_division():
    assert run("int main(void){ unsigned a = 0xFFFFFFFE;"
               " return (int)((a / 3) & 0x7FFFFFFF); }") == \
        ((0xFFFFFFFE // 3) & 0x7FFFFFFF)


def test_shift_semantics():
    assert s32(run("int main(void){ int a = -16; return a >> 2; }")) == -4
    assert run("int main(void){ unsigned a = 0x80000000;"
               " return (int)(a >> 28); }") == 8


def test_comparisons_signed_unsigned():
    assert run("int main(void){ int a = -1; return a < 0; }") == 1
    assert run("int main(void){ unsigned a = 0xFFFFFFFF;"
               " return a < 1; }") == 0


def test_short_circuit_side_effects():
    src = """
    int calls = 0;
    int bump(void) { calls = calls + 1; return 1; }
    int main(void) {
        int r = 0 && bump();
        r = r + (1 || bump());
        return calls * 10 + r;
    }
    """
    assert run(src) == 1    # bump never called, r == 1


def test_arrays_and_pointers():
    src = """
    int data[4] = {10, 20, 30, 40};
    int main(void) {
        int *p = data;
        p[1] = p[1] + 1;
        return *p + p[1] + data[3];
    }
    """
    assert run(src) == 10 + 21 + 40


def test_char_short_memory_widths():
    src = """
    char bytes[4];
    short halves[2];
    int main(void) {
        bytes[0] = (char)200;           /* signed char wraps */
        halves[0] = (short)0x8000;
        return (bytes[0] < 0) * 10 + (halves[0] < 0);
    }
    """
    assert run(src) == 11


def test_recursion():
    src = """
    int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
    int main(void) { return fib(12); }
    """
    assert run(src) == 144


def test_do_while_and_break_continue():
    src = """
    int main(void) {
        int i = 0;
        int total = 0;
        do {
            i++;
            if (i == 3) continue;
            if (i > 6) break;
            total += i;
        } while (i < 100);
        return total;     /* 1+2+4+5+6 */
    }
    """
    assert run(src) == 18


def test_ternary_and_incdec():
    src = """
    int main(void) {
        int a = 5;
        int b = a++;
        int c = ++a;
        return (a == 7 ? 100 : 0) + b + c;
    }
    """
    assert run(src) == 100 + 5 + 7


def test_globals_with_initializers():
    src = """
    int scalar = 7;
    int table[3] = {1, 2, 3};
    unsigned char msg[4] = "hi";
    int main(void) { return scalar + table[2] + msg[1]; }
    """
    assert run(src) == 7 + 3 + ord("i")


@pytest.mark.parametrize("level", LEVELS)
def test_all_levels_agree(level):
    src = """
    int acc(int *xs, int n) {
        int t = 0;
        for (int i = 0; i < n; i++) t += xs[i] * (i + 1);
        return t;
    }
    int data[6] = {3, -1, 4, 1, -5, 9};
    int main(void) { return acc(data, 6) & 0xFFFF; }
    """
    want = sum(v * (i + 1) for i, v in
               enumerate([3, -1, 4, 1, -5, 9])) & 0xFFFF
    assert run(src, level) == want


def test_o0_bigger_than_o2():
    src = "int main(void){ int t=0; for(int i=0;i<9;i++) t+=i; return t; }"
    o0 = compile_to_program(src, "O0").code_size_bytes
    o2 = compile_to_program(src, "O2").code_size_bytes
    assert o0 > o2


def test_constant_folding_at_o1():
    asm = compile_to_assembly("int main(void){ return 6 * 7; }", "O1")
    assert "li t0, 42" in asm or "li a0, 42" in asm
    assert "__mulsi3" not in asm


def test_strength_reduction_at_o2():
    asm = compile_to_assembly(
        "int main(int) { return 0; } int f(int a){ return a * 8; }", "O2") \
        if False else compile_to_assembly(
        "int f(int a){ return a * 8; } int main(void){ return f(3); }",
        "O2")
    assert "slli" in asm and "__mulsi3" not in asm


def test_builtins_emitted_only_when_used():
    asm = compile_to_assembly("int main(void){ return 1 + 2; }", "O2")
    assert "__mulsi3" not in asm
    asm2 = compile_to_assembly(
        "int g = 3; int main(void){ return g * g; }", "O2")
    assert "__mulsi3" in asm2


def test_inlining_at_o3():
    src = """
    int tiny(int x) { return x + 1; }
    int main(void) { return tiny(tiny(tiny(0))); }
    """
    o3 = compile_to_assembly(src, "O3")
    # all calls inlined away in main
    main_part = o3.split("main:")[1].split("tiny:")[0] \
        if "tiny:" in o3.split("main:")[1] else o3.split("main:")[1]
    assert "call tiny" not in main_part


def test_errors():
    with pytest.raises((ParseError, LexError)):
        compile_to_program("int main(void) { return ; ")
    with pytest.raises(SemaError):
        compile_to_program("int main(void) { return missing; }")
    with pytest.raises(ValueError):
        normalize_level("O9")
