"""MicroC compiler tests: language features, opt levels, correctness."""

import pytest

from repro.compiler import (
    LexError, ParseError, SemaError, compile_to_assembly,
    compile_to_program, normalize_level,
)
from repro.sim import run_program

LEVELS = ("O0", "O1", "O2", "O3", "Oz")


def run(src, level="O2", maxi=4_000_000):
    return run_program(compile_to_program(src, level).program,
                       max_instructions=maxi).exit_code


def s32(v):
    v &= 0xFFFFFFFF
    return v - (1 << 32) if v & 0x80000000 else v


def test_arithmetic_and_precedence():
    assert run("int main(void){ return 2 + 3 * 4 - 1; }") == 13


def test_division_semantics_trunc_toward_zero():
    assert s32(run("int main(void){ return (-7) / 2; }")) == -3
    assert s32(run("int main(void){ return (-7) % 2; }")) == -1


def test_unsigned_division():
    assert run("int main(void){ unsigned a = 0xFFFFFFFE;"
               " return (int)((a / 3) & 0x7FFFFFFF); }") == \
        ((0xFFFFFFFE // 3) & 0x7FFFFFFF)


def test_shift_semantics():
    assert s32(run("int main(void){ int a = -16; return a >> 2; }")) == -4
    assert run("int main(void){ unsigned a = 0x80000000;"
               " return (int)(a >> 28); }") == 8


def test_comparisons_signed_unsigned():
    assert run("int main(void){ int a = -1; return a < 0; }") == 1
    assert run("int main(void){ unsigned a = 0xFFFFFFFF;"
               " return a < 1; }") == 0


def test_short_circuit_side_effects():
    src = """
    int calls = 0;
    int bump(void) { calls = calls + 1; return 1; }
    int main(void) {
        int r = 0 && bump();
        r = r + (1 || bump());
        return calls * 10 + r;
    }
    """
    assert run(src) == 1    # bump never called, r == 1


def test_arrays_and_pointers():
    src = """
    int data[4] = {10, 20, 30, 40};
    int main(void) {
        int *p = data;
        p[1] = p[1] + 1;
        return *p + p[1] + data[3];
    }
    """
    assert run(src) == 10 + 21 + 40


def test_char_short_memory_widths():
    src = """
    char bytes[4];
    short halves[2];
    int main(void) {
        bytes[0] = (char)200;           /* signed char wraps */
        halves[0] = (short)0x8000;
        return (bytes[0] < 0) * 10 + (halves[0] < 0);
    }
    """
    assert run(src) == 11


def test_recursion():
    src = """
    int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
    int main(void) { return fib(12); }
    """
    assert run(src) == 144


def test_do_while_and_break_continue():
    src = """
    int main(void) {
        int i = 0;
        int total = 0;
        do {
            i++;
            if (i == 3) continue;
            if (i > 6) break;
            total += i;
        } while (i < 100);
        return total;     /* 1+2+4+5+6 */
    }
    """
    assert run(src) == 18


def test_ternary_and_incdec():
    src = """
    int main(void) {
        int a = 5;
        int b = a++;
        int c = ++a;
        return (a == 7 ? 100 : 0) + b + c;
    }
    """
    assert run(src) == 100 + 5 + 7


def test_globals_with_initializers():
    src = """
    int scalar = 7;
    int table[3] = {1, 2, 3};
    unsigned char msg[4] = "hi";
    int main(void) { return scalar + table[2] + msg[1]; }
    """
    assert run(src) == 7 + 3 + ord("i")


@pytest.mark.parametrize("level", LEVELS)
def test_all_levels_agree(level):
    src = """
    int acc(int *xs, int n) {
        int t = 0;
        for (int i = 0; i < n; i++) t += xs[i] * (i + 1);
        return t;
    }
    int data[6] = {3, -1, 4, 1, -5, 9};
    int main(void) { return acc(data, 6) & 0xFFFF; }
    """
    want = sum(v * (i + 1) for i, v in
               enumerate([3, -1, 4, 1, -5, 9])) & 0xFFFF
    assert run(src, level) == want


def test_o0_bigger_than_o2():
    src = "int main(void){ int t=0; for(int i=0;i<9;i++) t+=i; return t; }"
    o0 = compile_to_program(src, "O0").code_size_bytes
    o2 = compile_to_program(src, "O2").code_size_bytes
    assert o0 > o2


def test_constant_folding_at_o1():
    asm = compile_to_assembly("int main(void){ return 6 * 7; }", "O1")
    assert "li t0, 42" in asm or "li a0, 42" in asm
    assert "__mulsi3" not in asm


def test_strength_reduction_at_o2():
    asm = compile_to_assembly(
        "int main(int) { return 0; } int f(int a){ return a * 8; }", "O2") \
        if False else compile_to_assembly(
        "int f(int a){ return a * 8; } int main(void){ return f(3); }",
        "O2")
    assert "slli" in asm and "__mulsi3" not in asm


def test_builtins_emitted_only_when_used():
    asm = compile_to_assembly("int main(void){ return 1 + 2; }", "O2")
    assert "__mulsi3" not in asm
    asm2 = compile_to_assembly(
        "int g = 3; int main(void){ return g * g; }", "O2")
    assert "__mulsi3" in asm2


def test_inlining_at_o3():
    src = """
    int tiny(int x) { return x + 1; }
    int main(void) { return tiny(tiny(tiny(0))); }
    """
    o3 = compile_to_assembly(src, "O3")
    # all calls inlined away in main
    main_part = o3.split("main:")[1].split("tiny:")[0] \
        if "tiny:" in o3.split("main:")[1] else o3.split("main:")[1]
    assert "call tiny" not in main_part


def test_errors():
    with pytest.raises((ParseError, LexError)):
        compile_to_program("int main(void) { return ; ")
    with pytest.raises(SemaError):
        compile_to_program("int main(void) { return missing; }")
    with pytest.raises(ValueError):
        normalize_level("O9")


# ------------------------------- system intrinsics + __interrupt (PR 5)


def test_csr_intrinsics_round_trip_all_levels():
    # csrw/csrr through mscratch (0x340), csrs sets bits, csrc clears.
    src = """
    int main(void) {
        __csrw(0x340, 0x5A00);
        __csrs(0x340, 0x00A5);
        __csrc(0x340, 0x0800);
        return (int)__csrr(0x340);
    }
    """
    for level in LEVELS:
        assert run(src, level) == 0x52A5, level


def test_csr_id_folds_constant_expressions():
    # The CSR id operand is a parse-time constant expression.
    src = "int main(void){ __csrw(0x300 + 0x40, 7);" \
          " return (int)__csrr(0x340); }"
    assert run(src) == 7
    asm = compile_to_assembly(src, "O2")
    assert "0x340" in asm


def test_csr_id_must_be_constant():
    with pytest.raises(SemaError):
        compile_to_program("int main(void){ int a = 5;"
                           " return (int)__csrr(a); }")
    with pytest.raises(SemaError):
        compile_to_program("int main(void){ return (int)__csrr(0x1000); }")


def test_wfi_emits_the_instruction():
    asm = compile_to_assembly(
        "int main(void){ __wfi(); return 0; }", "O2")
    assert "\n    wfi" in asm


def test_interrupt_qualifier_emits_isr_frame():
    # A handler that calls out can clobber the whole caller-saved set
    # through its callee: the prologue must preserve all of it.
    src = """
    int hits;
    int bump(int x) { return x + 1; }
    __interrupt void isr(void) { hits = bump(hits); }
    int main(void) { __csrw(0x305, isr); return 0; }
    """
    asm = compile_to_assembly(src, "O0")   # O0: no inlining, call survives
    isr_body = asm.split("isr:")[1]
    for reg in ("ra", "gp", "tp", "t0", "t1", "t2",
                "a0", "a1", "a2", "a3", "a4", "a5"):
        assert f"sw {reg}," in isr_body and f"lw {reg}," in isr_body
    assert "mret" in isr_body and "\n    ret" not in isr_body
    # main installs the handler address into mtvec.
    main_body = asm.split("main:")[1].split("isr:")[0]
    assert "la" in main_body and "csrw 0x305" in main_body


def test_leaf_isr_saves_only_clobbered_registers():
    src = """
    int hits;
    __interrupt void isr(void) { hits = hits + 1; }
    int main(void) { __csrw(0x305, isr); return 0; }
    """
    asm = compile_to_assembly(src, "O2")
    isr_body = asm.split("isr:")[1]
    assert "mret" in isr_body
    saved = {line.split()[1].rstrip(",") for line in isr_body.splitlines()
             if line.strip().startswith("sw ") and "(sp)" in line}
    # Leaf handler: no call, nothing spills — ra and the spill scratch
    # registers stay untouched and unsaved; what it does touch is saved.
    assert "ra" not in saved and "gp" not in saved and "tp" not in saved
    assert saved, "clobbered temporaries must still be preserved"
    used = {line.split()[1].rstrip(",") for line in isr_body.splitlines()
            if line.strip().startswith(("lw ", "li ", "la ", "addi "))
            and "(sp)" not in line}
    assert used & {"t0", "t1", "t2", "a0", "a1", "a2", "a3", "a4", "a5"} \
        <= saved


def test_interrupt_function_constraints():
    with pytest.raises(SemaError):
        compile_to_program("__interrupt int isr(void){ return 1; }"
                           "int main(void){ return 0; }")
    with pytest.raises(SemaError):
        compile_to_program("__interrupt void isr(int x){ }"
                           "int main(void){ return 0; }")
    with pytest.raises(SemaError):
        compile_to_program("__interrupt void isr(void){ }"
                           "int main(void){ isr(); return 0; }")
    with pytest.raises(ParseError):
        compile_to_program("__interrupt int bad;")


def test_wfi_is_a_load_barrier_for_local_cse():
    # Two loads of one global in a single block: CSE may fold them —
    # unless a wfi sits between, modelling an ISR write during sleep.
    fused = compile_to_assembly(
        "int g; int main(void){ int a = g; int b = g; return a + b; }",
        "O2")
    split = compile_to_assembly(
        "int g; int main(void){ int a = g; __wfi();"
        " int b = g; return a + b; }", "O2")
    assert fused.count("lw") < split.count("lw")


def test_all_c_interrupt_firmware_runs_on_golden():
    """End-to-end: intrinsics-only firmware (no asm) takes five timer
    interrupts and powers off — the PR 5 acceptance shape in miniature."""
    from repro.soc import SocSpec
    from repro.sim import GoldenSim

    src = """
    int ticks;
    __interrupt void isr(void) {
        ticks = ticks + 1;
        unsigned due = *(unsigned *)0x40108;
        *(unsigned *)0x40108 = due + 100;
    }
    int main(void) {
        ticks = 0;
        __csrw(0x305, isr);
        *(unsigned *)0x40108 = 100;
        *(unsigned *)0x4010C = 0;
        __csrw(0x304, 128);
        __csrs(0x300, 8);
        while (ticks < 5) __wfi();
        __csrc(0x300, 8);
        *(unsigned *)0x40000 = ticks;
        while (1) {}
        return 0;
    }
    """
    for level in ("O0", "O2"):
        program = compile_to_program(src, level).program
        sim = GoldenSim(program, soc=SocSpec())
        result = sim.run(200_000)
        assert result.halted_by == "poweroff" and result.exit_code == 5
        # Real duty-cycling: the clock outran the retirement count.
        assert sim.soc.timer.mtime > result.instructions


def test_csr_writes_are_load_barriers_for_local_cse():
    # A csrs of mstatus can enable interrupts: a cached load of an
    # ISR-shared global must not be reused across it.
    fused = compile_to_assembly(
        "int g; int main(void){ int a = g; int b = g; return a + b; }",
        "O2")
    for barrier in ("__csrs(0x300, 8)", "__csrw(0x304, 128)",
                    "__csrc(0x300, 8)"):
        split = compile_to_assembly(
            f"int g; int main(void){{ int a = g; {barrier};"
            f" int b = g; return a + b; }}", "O2")
        assert fused.count("lw") < split.count("lw"), barrier


def test_interrupt_frame_guard_rejects_gp_epilogue_path():
    from repro.compiler import CodegenError

    # A 2048-byte frame would restore gp and then clobber it with the
    # li-gp epilogue — the guard must refuse at exactly that boundary.
    big = 2048 // 4 - 4     # spill slots + saves land the frame at 2048
    src = (f"__interrupt void isr(void){{ int buf[{big}];"
           f" buf[0] = 1; buf[{big - 1}] = 2; }}"
           "int main(void){ __csrw(0x305, isr); return 0; }")
    with pytest.raises(CodegenError, match="__interrupt frame"):
        compile_to_assembly(src, "O2")
