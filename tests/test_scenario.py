"""Coverage-guided scenario engine (PR 9): generation, replay,
coverage extraction, campaign determinism, CLI stage contract."""

from __future__ import annotations

import json
import pickle

import pytest

from repro import cli
from repro.scenario import (BINS, CoverageMap, FleetScenario, SocScenario,
                            build_report, mutate_toward, outcome_coverage,
                            probe_gate_missing, probe_scenarios,
                            random_scenario, replay_scenario, run_scenario,
                            run_soc_scenario, scenario_campaign,
                            scenario_core_spec, validate_report)
from repro.scenario.coverage import coverage_from_trace
from repro.scenario.run import _compare_soc_backends
from repro.verify.fuzz import FUZZ_BASE_SEED, derive_seed


@pytest.fixture(scope="module")
def core():
    return scenario_core_spec().build()


def _seeds(n, stream=0):
    return [derive_seed(FUZZ_BASE_SEED, stream + index)
            for index in range(n)]


# ------------------------------------------------- scenarios are values


def test_scenarios_pickle_round_trip_and_compare_equal():
    for index, seed in enumerate(_seeds(24)):
        scenario = random_scenario(seed, scenario_id=f"t[{index}]")
        clone = pickle.loads(pickle.dumps(scenario))
        assert clone == scenario
        if isinstance(scenario, SocScenario):
            assert clone.source() == scenario.source()
        else:
            assert [clone.lane_source(lane)
                    for lane in range(len(clone.lanes))] == \
                [scenario.lane_source(lane)
                 for lane in range(len(scenario.lanes))]


def test_generation_is_a_pure_function_of_the_seed():
    for seed in _seeds(16):
        assert random_scenario(seed) == random_scenario(seed)
    for bin_name in ("trap.ecall", "arb.race.sensor_first",
                     "fleet.diverge.rv32e_bound"):
        seed = derive_seed(FUZZ_BASE_SEED, 7)
        assert mutate_toward(bin_name, seed) == \
            mutate_toward(bin_name, seed)


def test_every_reported_id_replays_to_the_same_scenario():
    # The exact contract printed in failure reports: the (scenario-id,
    # seed) pair alone rebuilds the scenario object.
    rows = [random_scenario(
        seed, scenario_id=f"scn[{index:03d}]:seed={seed:#018x}")
        for index, seed in enumerate(_seeds(12))]
    rows += [mutate_toward(
        "wfi.wake.masked", seed,
        scenario_id=f"mut[{index:03d}]:wfi.wake.masked:seed={seed:#018x}")
        for index, seed in enumerate(_seeds(4, stream=500))]
    rows += probe_scenarios()
    for scenario in rows:
        assert replay_scenario(scenario.scenario_id,
                               scenario.seed) == scenario


def test_replay_runs_bit_identically(core):
    # Same scenario, run twice: outcome rows (result, bins, everything)
    # must be byte-equal — the replay half of the replay-pair promise.
    for seed in _seeds(6):
        scenario = random_scenario(seed, scenario_id="replay")
        assert run_scenario(core, scenario) == run_scenario(core, scenario)


def test_mutate_toward_rejects_unknown_bin():
    with pytest.raises(ValueError, match="unknown coverage bin"):
        mutate_toward("bogus.bin", FUZZ_BASE_SEED)


# --------------------------------------------- cross-backend equivalence


def test_soc_scenarios_match_golden_column_for_column(core):
    # Full RVFI-column compare on a sample, fault injection included:
    # the segmented fused run and the segmented golden run concatenate
    # into identical master traces.
    checked = 0
    for seed in _seeds(10):
        scenario = random_scenario(seed, scenario_id="xback")
        if not isinstance(scenario, SocScenario):
            continue
        assert _compare_soc_backends(core, scenario) is None
        checked += 1
    assert checked >= 5


def test_coverage_is_backend_independent(core):
    scenario = mutate_toward("arb.race.timer_first",
                             derive_seed(FUZZ_BASE_SEED, 3))
    fused_info, fused_trace = run_soc_scenario(core, scenario, "fused")
    golden_info, golden_trace = run_soc_scenario(core, scenario, "golden")
    samples = len(scenario.waveform.samples())
    assert coverage_from_trace(fused_trace, fused_info["halted_by"],
                               samples) == \
        coverage_from_trace(golden_trace, golden_info["halted_by"],
                            samples)


def test_fault_injection_perturbs_the_run(core):
    # A register fault on the checksum register must change the observed
    # exit code (otherwise "fault injection" is a no-op) while both
    # backends still agree on the perturbed run.
    import dataclasses

    from repro.scenario.gen import FaultEvent
    base = mutate_toward("halt.poweroff", derive_seed(FUZZ_BASE_SEED, 5))
    faulted = dataclasses.replace(
        base, faults=(FaultEvent(10, "reg", 9, 0x1234_5678),))
    clean_info, _ = run_soc_scenario(core, base, "fused")
    fault_info, _ = run_soc_scenario(core, faulted, "fused")
    assert clean_info["halted_by"] == fault_info["halted_by"] \
        == "poweroff"
    assert clean_info["exit_code"] != fault_info["exit_code"]
    assert _compare_soc_backends(core, faulted) is None


# ------------------------------------------------------ directed recipes


@pytest.mark.parametrize("bin_name", [
    "trap.ecall", "trap.illegal", "arb.race.timer_first",
    "arb.storm.sensor", "wfi.wake.masked", "sensor.drained",
    "halt.wfi", "fleet.diverge.rv32e_bound"])
def test_mutate_toward_reaches_its_bin(core, bin_name):
    hit = False
    for seed in _seeds(3, stream=900):
        outcome = run_scenario(core, mutate_toward(bin_name, seed))
        if outcome_coverage(outcome).counts[bin_name]:
            hit = True
            break
    assert hit, f"directed recipe never reached {bin_name}"


def test_probe_set_reaches_every_gate_bin(core):
    merged = CoverageMap()
    for scenario in probe_scenarios():
        merged.merge(outcome_coverage(run_scenario(core, scenario)))
    assert probe_gate_missing(merged) == ()


# ----------------------------------------------------- campaign + report


@pytest.fixture(scope="module")
def small_campaign():
    return scenario_campaign(count=8, workers=1, mutation_budget=4,
                             golden_stride=6)


def test_campaign_is_bit_identical_across_worker_counts(small_campaign):
    other = scenario_campaign(count=8, workers=4, mutation_budget=4,
                              golden_stride=6)
    assert other["coverage"] == small_campaign["coverage"]
    assert list(other["coverage"].counts) == \
        list(small_campaign["coverage"].counts)  # bin ordering too
    assert [row["scenario_id"] for row in other["scenarios"]] == \
        [row["scenario_id"] for row in small_campaign["scenarios"]]
    assert [row["bins"] for row in other["scenarios"]] == \
        [row["bins"] for row in small_campaign["scenarios"]]
    assert [row["checked_backends"] for row in other["scenarios"]] == \
        [row["checked_backends"] for row in small_campaign["scenarios"]]
    assert other["failures"] == small_campaign["failures"]


def test_campaign_rows_carry_the_replay_pair(small_campaign):
    for row in small_campaign["scenarios"]:
        replayed = replay_scenario(row["scenario_id"], row["seed"])
        assert replayed.seed == row["seed"]
        assert replayed.kind == row["kind"]


def test_campaign_merged_map_equals_row_sum(small_campaign):
    total = CoverageMap()
    for row in small_campaign["scenarios"]:
        total.merge(outcome_coverage(row))
    assert total == small_campaign["coverage"]


def test_report_schema_round_trip(small_campaign, tmp_path):
    document = build_report(small_campaign, {"count": 8})
    assert validate_report(document) == []
    assert list(document["bins"]) == list(BINS)
    # The writer refuses a tampered document.
    broken = json.loads(json.dumps(document))
    broken["covered"] = []
    assert validate_report(broken)
    del broken["covered"]
    assert validate_report(broken)


def test_coverage_map_rejects_structure_drift():
    with pytest.raises(ValueError, match="unknown coverage bin"):
        CoverageMap().hit("nope")
    doc = CoverageMap().to_doc()
    reordered = dict(reversed(list(doc.items())))
    with pytest.raises(ValueError, match="registry"):
        CoverageMap.from_doc(reordered)


# -------------------------------------------------------- the CLI stage


def test_cli_scenarios_stage_writes_validated_report(tmp_path, capsys):
    report_path = tmp_path / "cov.json"
    code = cli.main(["scenarios", "--scenario-count", "6",
                     "--scenario-mutation", "4", "--workers", "2",
                     "--scenario-golden-stride", "0",
                     "--coverage-out", str(report_path)])
    assert code == 0
    assert capsys.readouterr().out == ""   # stdout stays machine-clean
    document = json.loads(report_path.read_text())
    assert validate_report(document) == []
    assert document["probe_bins"] is not None
    assert len(document["covered"]) > 0


def test_cli_scenarios_zero_count_fails_cleanly(tmp_path):
    # No scenarios means nothing verified — never a vacuous pass.
    out = tmp_path / "results.json"
    code = cli.main(["scenarios", "--scenario-count", "0",
                     "--json-out", str(out)])
    assert code == 1
    payload = json.loads(out.read_text())["scenarios"]
    assert payload["ok"] is False and payload["covered"] == 0


def test_scenario_counters_registered():
    from repro import obs
    for name in ("scenario.runs", "scenario.replays",
                 "scenario.mutants", "scenario.failures"):
        assert name in obs.COUNTERS
    with obs.session() as telemetry:
        obs.bump("scenario.runs")
    assert telemetry.counters["scenario.runs"] == 1


def test_fleet_scenario_covers_divergence_bins(core):
    scenario = FleetScenario(scenario_id="fleet-direct", seed=1,
                             lanes=(("mret", "ecall"), ("none", "ecall")),
                             budget=64)
    outcome = run_scenario(core, scenario)
    cov = outcome_coverage(outcome)
    assert cov.counts["fleet.diverge.mret"] >= 1
    assert outcome["kind"] == "fleet"
