"""Batched fleet simulation tests (PR 7).

:class:`~repro.rtl.fleet.FleetSim` promises three things and these tests
pin all of them:

* **equivalence** — every lane's results (RunResult fields, final
  architectural state, full RVFI columns) are bit-identical to running
  that lane alone on the single-core fused backend;
* **divergence fallback** — a lane that reaches anything the batched
  loop cannot complete bit-identically (a trapping ecall, emulated
  Zicsr, an illegal word, an out-of-RAM access) leaves the batch with
  that instruction unexecuted and finishes on a per-instance
  :class:`~repro.rtl.core_sim.RisspSim`, while the rest of the batch
  keeps going — results still bit-identical, error surfaces included;
* **determinism contract** — batch size, stepping quantum and lane
  order never change any lane's results; mid-run peek/poke behaves
  exactly like the single-instance harness.
"""

from __future__ import annotations

import pytest

from repro.isa import INSTRUCTIONS, assemble
from repro.rtl.compiled import compile_fleet
from repro.rtl.core_sim import RisspSim
from repro.rtl.fleet import FleetSim
from repro.rtl.rissp import build_rissp
from repro.sim.golden import SimulationError
from repro.sim.tracing import RvfiTrace

FULL_SUBSET = [d.mnemonic for d in INSTRUCTIONS]


@pytest.fixture(scope="module")
def full_core():
    return build_rissp(FULL_SUBSET)


@pytest.fixture(scope="module")
def trap_core():
    return build_rissp(FULL_SUBSET + ["mret"])


#: Arithmetic/store/load loop parameterized by a2 (x12): every lane
#: computes a distinct result and halts at a distinct retirement count.
LOOP_SOURCE = """
    .text
start:
    li a0, 0
    li t0, 0
loop:
    add a0, a0, t0
    addi t0, t0, 1
    xor a1, a0, t0
    sw a1, 128(zero)
    lw a3, 128(zero)
    add a0, a0, a3
    blt t0, a2, loop
    ecall
"""


@pytest.fixture(scope="module")
def loop_program():
    return assemble(LOOP_SOURCE)


def single_reference(core, program, lane_value, *, trace=False,
                     max_instructions=10_000):
    sim = RisspSim(core, program, trace=trace)
    sim.rtl.regfile_data[12] = lane_value
    return sim, sim.run(max_instructions=max_instructions)


def assert_lane_matches(fleet, lane, sim, reference):
    result = fleet.result(lane)
    assert result.exit_code == reference.exit_code
    assert result.instructions == reference.instructions
    assert result.halted_by == reference.halted_by
    for index in range(1, 16):
        assert fleet.peek_regfile(lane, index) == \
            sim.rtl.regfile_data[index]
    assert fleet.peek_regfile(lane, 0) == 0
    for name in sim.core.registers:
        assert fleet.peek_register(lane, name) == sim.rtl.env[name]


# ----------------------------------------------------------- equivalence

def test_batched_lanes_match_single_core_fused(full_core, loop_program):
    fleet = FleetSim(full_core, loop_program, 6)
    for lane in range(6):
        fleet.poke_regfile(lane, 12, 3 + lane)
    fleet.run(max_instructions=10_000)
    for lane in range(6):
        assert fleet.lane_state(lane) == "halted"
        sim, reference = single_reference(full_core, loop_program,
                                          3 + lane)
        assert_lane_matches(fleet, lane, sim, reference)


def test_rvfi_columns_match_single_core_fused(full_core, loop_program):
    """Full column diff on traced lanes — the strongest equivalence the
    harness can express (pc/rs/rd/mem lanes, every retirement)."""
    fleet = FleetSim(full_core, loop_program, 3, trace_lanes=(0, 1, 2))
    for lane in range(3):
        fleet.poke_regfile(lane, 12, 4 + lane)
    fleet.run(max_instructions=10_000)
    for lane in range(3):
        _, reference = single_reference(full_core, loop_program, 4 + lane,
                                        trace=True)
        fleet_trace = fleet.trace(lane)
        assert len(fleet_trace) == len(reference.trace)
        for field in RvfiTrace.FIELDS:
            assert fleet_trace.column(field) == \
                reference.trace.column(field), field


def test_limit_and_halt_mix(full_core, loop_program):
    """Lanes that halt early coexist with lanes that run out of budget."""
    fleet = FleetSim(full_core, loop_program, 4)
    bounds = (2, 2000, 3, 2000)
    for lane, bound in enumerate(bounds):
        fleet.poke_regfile(lane, 12, bound)
    fleet.run(max_instructions=100, quantum=32)
    for lane, bound in enumerate(bounds):
        sim, reference = single_reference(full_core, loop_program, bound,
                                          max_instructions=100)
        assert_lane_matches(fleet, lane, sim, reference)
    assert fleet.result(0).halted_by == "ecall"
    assert fleet.result(1).halted_by == "limit"


def test_per_lane_programs(full_core):
    add_prog = assemble(".text\nli a0, 7\naddi a0, a0, 1\necall\n")
    mul_prog = assemble(".text\nli a0, 6\nslli a0, a0, 2\necall\n")
    fleet = FleetSim(full_core, programs=[add_prog, mul_prog, add_prog])
    results = fleet.run()
    assert [r.exit_code for r in results] == [8, 24, 8]


# ------------------------------------------------- determinism contract

def test_batch_size_never_changes_results(full_core, loop_program):
    """The determinism contract: the same lane workload computes the same
    result alone, in a small batch, and in a large batch."""
    def outcome(instances, lane):
        fleet = FleetSim(full_core, loop_program, instances)
        for index in range(instances):
            fleet.poke_regfile(index, 12, 5 + index % 4)
        results = fleet.run(max_instructions=1_000)
        r = results[lane]
        return (r.exit_code, r.instructions, r.halted_by,
                [fleet.peek_regfile(lane, i) for i in range(16)])

    assert outcome(1, 0) == outcome(4, 0) == outcome(32, 0)
    assert outcome(4, 3) == outcome(32, 3)


def test_quantum_never_changes_results(full_core, loop_program):
    def outcome(quantum):
        fleet = FleetSim(full_core, loop_program, 5)
        for lane in range(5):
            fleet.poke_regfile(lane, 12, 6 + lane)
        results = fleet.run(max_instructions=1_000, quantum=quantum)
        return [(r.exit_code, r.instructions, r.halted_by)
                for r in results]

    reference = outcome(256)
    for quantum in (1, 3, 17, 64):
        assert outcome(quantum) == reference


def test_forced_backend_matches_fused(full_core, loop_program):
    """backend="interpreter" routes every lane through per-instance
    oracle sims — same results, no batched pass."""
    fused = FleetSim(full_core, loop_program, 2)
    oracle = FleetSim(full_core, loop_program, 2, backend="interpreter")
    for fleet in (fused, oracle):
        for lane in range(2):
            fleet.poke_regfile(lane, 12, 4 + lane)
    expected = fused.run(max_instructions=300)
    actual = oracle.run(max_instructions=300, quantum=64)
    assert [(r.exit_code, r.instructions, r.halted_by)
            for r in actual] == \
        [(r.exit_code, r.instructions, r.halted_by) for r in expected]
    assert oracle.lane_state(0) == "halted"


# ------------------------------------------------- divergence fallback

def test_trapping_lane_diverges_while_batch_continues(trap_core):
    """One lane installs mtvec and ecalls into a handler (divergence:
    the batched loop never executes a trapping instruction); its
    neighbours never trap and stay on the batched path to halt.  Both
    kinds must match their single-core runs exactly."""
    source = """
        .text
    start:
        beq a2, zero, plain
        la t1, handler
        csrrw zero, mtvec, t1      # emulated Zicsr -> diverges here
        li a0, 5
        ecall                      # traps into handler
        addi a0, a0, 7
        li t1, 0
        csrrw zero, mtvec, t1
        ecall
    plain:
        li a0, 40
        addi a0, a0, 2
        ecall
    handler:
        addi a0, a0, 100
        csrrs t2, mepc, zero
        addi t2, t2, 4
        csrrw zero, mepc, t2
        mret
    """
    program = assemble(source)
    fleet = FleetSim(trap_core, program, 4,
                     trace_lanes=(0, 1, 2, 3))
    for lane in range(4):
        fleet.poke_regfile(lane, 12, lane % 2)
    results = fleet.run(max_instructions=1_000)
    assert results[0].exit_code == 42 and results[2].exit_code == 42
    assert results[1].exit_code == 112 and results[3].exit_code == 112
    # Divergent lanes were adopted by per-instance sims; plain lanes
    # never left the batch.
    assert 1 in fleet._sims and 3 in fleet._sims
    assert 0 not in fleet._sims and 2 not in fleet._sims
    for lane in range(4):
        sim = RisspSim(trap_core, program, trace=True)
        sim.rtl.regfile_data[12] = lane % 2
        reference = sim.run(max_instructions=1_000)
        assert_lane_matches(fleet, lane, sim, reference)
        fleet_trace = fleet.trace(lane)
        for field in RvfiTrace.FIELDS:
            assert fleet_trace.column(field) == \
                reference.trace.column(field), (lane, field)


def test_illegal_word_raises_like_single_core(full_core):
    program = assemble(".text\nli a0, 1\n.word 0xFFFFFFFF\necall\n")
    fleet = FleetSim(full_core, program, 2)
    with pytest.raises(SimulationError):
        fleet.run(max_instructions=100)
    single = RisspSim(full_core, program)
    with pytest.raises(SimulationError):
        single.run(max_instructions=100)


def test_divergent_lane_keeps_tracing(trap_core):
    """A trace attached before divergence keeps filling after the lane
    moves to the per-instance path (no rows lost at the boundary)."""
    source = """
        .text
    start:
        la t1, handler
        csrrw zero, mtvec, t1
        li a0, 1
        ecall
        li t1, 0
        csrrw zero, mtvec, t1
        ecall
    handler:
        addi a0, a0, 10
        csrrs t2, mepc, zero
        addi t2, t2, 4
        csrrw zero, mepc, t2
        mret
    """
    program = assemble(source)
    fleet = FleetSim(trap_core, program, 1, trace_lanes=(0,))
    fleet.run(max_instructions=100)
    sim = RisspSim(trap_core, program, trace=True)
    reference = sim.run(max_instructions=100)
    assert len(fleet.trace(0)) == len(reference.trace)
    for field in RvfiTrace.FIELDS:
        assert fleet.trace(0).column(field) == \
            reference.trace.column(field), field


# -------------------------------------------------- mid-run peek/poke

def test_midrun_poke_on_batched_lane(full_core, loop_program):
    """Poking one batched lane mid-run redirects only that lane — the
    same fault-injection surface the single-instance harness offers."""
    fleet = FleetSim(full_core, loop_program, 3)
    for lane in range(3):
        fleet.poke_regfile(lane, 12, 50)
    fleet.step(5)
    assert fleet.lane_state(1) == "batched"
    fleet.poke_regfile(1, 12, 3)  # shrink only lane 1's loop bound
    results = fleet.run(max_instructions=1_000)
    assert results[1].instructions < results[0].instructions
    assert results[0].instructions == results[2].instructions

    # The poked trajectory equals a single-core run poked at the same
    # retirement count.
    sim = RisspSim(full_core, loop_program)
    sim.rtl.regfile_data[12] = 50
    sim._fused_run(0, 5, None)
    sim.rtl.regfile_data[12] = 3
    reference = sim.run(max_instructions=1_000)
    # run() restarts its budget; align on total retirements instead.
    assert fleet.peek_regfile(1, 10) == reference.exit_code


def test_midrun_peek_and_memory_poke(full_core, loop_program):
    fleet = FleetSim(full_core, loop_program, 2)
    for lane in range(2):
        fleet.poke_regfile(lane, 12, 30)
    fleet.step(7)
    assert fleet.instructions(0) == 7
    assert fleet.peek_register(0, "pc") != 0
    fleet.poke_memory_word(0, 0x200, 0xDEADBEEF)
    fleet.run(max_instructions=500)
    assert fleet.peek_memory_word(0, 0x200) == 0xDEADBEEF
    assert fleet.peek_memory_word(1, 0x200) == 0
    # x0 stays hardwired to zero through pokes.
    fleet.poke_regfile(0, 0, 123)
    assert fleet.peek_regfile(0, 0) == 0


def test_poke_register_reaches_fallback_lane(trap_core, loop_program):
    fleet = FleetSim(trap_core, loop_program, 1, backend="compiled")
    fleet.poke_regfile(0, 12, 4)
    fleet.step(3)  # materializes (non-fused backend)
    assert fleet.lane_state(0) == "fallback"
    fleet.poke_register(0, "mtvec", 0x80)
    assert fleet.peek_register(0, "mtvec") == 0x80
    assert fleet._sims[0].rtl.env["mtvec"] == 0x80


# ------------------------------------------------------- construction

def test_constructor_validation(full_core, loop_program):
    with pytest.raises(ValueError, match="needs a program"):
        FleetSim(full_core)
    with pytest.raises(ValueError, match="at least one"):
        FleetSim(full_core, programs=[])
    with pytest.raises(ValueError, match="instances"):
        FleetSim(full_core, instances=3,
                 programs=[loop_program, loop_program])
    with pytest.raises(ValueError, match="positive"):
        FleetSim(full_core, loop_program, 1).step(0)


def test_compile_fleet_shares_decode_cache(full_core):
    """The batched loop and the single-instance fused loop share one
    per-word decode cache — same dict object, same positional layout."""
    from repro.rtl.compiled import compile_core

    fleet = compile_fleet(full_core)
    core = compile_core(full_core)
    assert fleet is compile_fleet(full_core)  # memoized per module
    assert core.namespace["_DCACHE"] is \
        fleet.run_fleet.__globals__["_DCACHE"]
    assert fleet.registers == tuple(full_core.registers)
