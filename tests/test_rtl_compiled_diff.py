"""Differential test harness: compiled RTL backend vs the interpreter.

The tree-walking evaluator (:func:`repro.rtl.sim.eval_expr`) is the
reference oracle; the ``exec``-compiled backend
(:mod:`repro.rtl.compiled`) must be bit-identical to it on every signal of
every module.  Following the fast-path-vs-exact-reference methodology the
ISSUE borrows from the IRM-CG paper, this harness checks the fast backend
against the oracle two ways:

* **randomized expression DAGs** — a seeded generator builds modules out
  of every :class:`~repro.rtl.ir.Op`, widths 1–64, deep structural
  sharing (the same subexpression object feeding many parents, which also
  exercises the compiler's CSE), registers with enables, and drives them
  with random input vectors, asserting the full ``env`` matches after
  every ``eval_comb`` and ``tick``;
* **whole-core lock-step fuzz** — the full RV32E RISSP is driven with
  thousands of random (valid) instruction words on both backends at once,
  comparing complete ``env`` and register-file state every cycle.
"""

import random

import pytest

from repro.isa import INSTRUCTIONS
from repro.isa.encoding import EncodingError, Instruction, encode
from repro.rtl import build_rissp, compile_module
from repro.rtl.ir import Binary, Cat, Const, Ext, Module, Mux, Not, Op, Slice
from repro.rtl.sim import RtlSim

_WIDTHS = (1, 2, 3, 5, 7, 8, 13, 16, 17, 24, 31, 32, 33, 48, 63, 64)


def _fit(rng, expr, width):
    """Adapt ``expr`` to ``width`` bits via slice / zero- or sign-extend."""
    if expr.width == width:
        return expr
    if expr.width > width:
        return Slice(expr, width - 1, 0)
    return Ext(expr, width, signed=bool(rng.getrandbits(1)))


def _random_node(rng, pool):
    kind = rng.randrange(8)
    a = rng.choice(pool)
    if kind == 0:
        return Not(a)
    if kind == 1:
        op = rng.choice([Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR])
        return Binary(op, a, _fit(rng, rng.choice(pool), a.width))
    if kind == 2:
        op = rng.choice([Op.EQ, Op.NE, Op.ULT, Op.SLT, Op.UGE, Op.SGE])
        return Binary(op, a, _fit(rng, rng.choice(pool), a.width))
    if kind == 3:
        # Shift amounts keep their own width so >=width shifts happen often.
        op = rng.choice([Op.SHL, Op.LSHR, Op.ASHR])
        amount = rng.choice(pool)
        if amount.width > 8:
            amount = Slice(amount, 7, 0)
        if rng.getrandbits(1):
            amount = Const(rng.randrange(0, 2 * a.width + 2),
                           max(1, a.width.bit_length() + 1))
        return Binary(op, a, amount)
    if kind == 4:
        sel = _fit(rng, rng.choice(pool), 1)
        return Mux(sel, a, _fit(rng, rng.choice(pool), a.width))
    if kind == 5:
        parts = [a]
        total = a.width
        for _ in range(rng.randrange(1, 3)):
            part = rng.choice(pool)
            if total + part.width > 64:
                break
            parts.append(part)
            total += part.width
        if len(parts) == 1:
            return Not(a)
        return Cat(tuple(parts))
    if kind == 6:
        hi = rng.randrange(a.width)
        lo = rng.randrange(hi + 1)
        return Slice(a, hi, lo)
    out_width = rng.randrange(a.width, min(64, a.width + 16) + 1)
    return Ext(a, out_width, signed=bool(rng.getrandbits(1)))


def _random_module(seed):
    """A random module whose DAG shares subexpressions across assigns."""
    rng = random.Random(seed)
    module = Module(f"fuzz{seed}")
    pool = [Const(rng.getrandbits(w) if rng.getrandbits(1) else (1 << w) - 1,
                  w)
            for w in rng.sample(_WIDTHS, 2)]
    inputs = []
    for index in range(rng.randrange(3, 7)):
        sig = module.input(f"in{index}", rng.choice(_WIDTHS))
        inputs.append(sig)
        pool.append(sig)
    registers = []
    for index in range(rng.randrange(0, 3)):
        sig = module.register(f"r{index}", rng.choice(_WIDTHS),
                              reset_value=rng.getrandbits(8))
        registers.append(sig)
        pool.append(sig)
    for index in range(rng.randrange(20, 45)):
        node = _random_node(rng, pool)
        module.assign(module.wire(f"n{index}", node.width), node)
        pool.append(node)
    for sig in registers:
        enable = None
        if rng.getrandbits(1):
            enable = _fit(rng, rng.choice(pool), 1)
        module.connect_register(sig.name, _fit(rng, rng.choice(pool),
                                               sig.width), enable)
    module.assign(module.output("out", pool[-1].width), pool[-1])
    module.check()
    return module, inputs


def _drive_both(rng, sims, inputs):
    values = {}
    for sig in inputs:
        roll = rng.randrange(4)
        if roll == 0:
            values[sig.name] = 0
        elif roll == 1:
            values[sig.name] = (1 << sig.width) - 1
        else:
            values[sig.name] = rng.getrandbits(sig.width)
    for sim in sims:
        sim.set_inputs(**values)


def _assert_same_state(compiled, interp, context):
    assert compiled.env == interp.env, (
        context + ": " + repr(sorted(
            (k, compiled.env.get(k), interp.env.get(k))
            for k in set(compiled.env) | set(interp.env)
            if compiled.env.get(k) != interp.env.get(k))[:5]))
    assert compiled.regfile_data == interp.regfile_data, context


@pytest.mark.parametrize("seed", range(40))
def test_random_dag_backends_identical(seed):
    module, inputs = _random_module(seed)
    compiled = RtlSim(module, backend="compiled")
    interp = RtlSim(module, backend="interpreter")
    rng = random.Random(seed + 10_000)
    for vector in range(12):
        _drive_both(rng, (compiled, interp), inputs)
        for sim in (compiled, interp):
            sim.eval_comb()
        _assert_same_state(compiled, interp, f"seed={seed} vector={vector}")
        for sim in (compiled, interp):
            sim.tick()
        _assert_same_state(compiled, interp,
                           f"seed={seed} vector={vector} post-tick")


def test_random_dag_every_signal_matches_eval_expr():
    """Spot-check the compiled value of every assign against eval_expr
    directly (not just env equality of two RtlSims)."""
    from repro.rtl.sim import eval_expr

    module, inputs = _random_module(99)
    compiled = RtlSim(module, backend="compiled")
    rng = random.Random(7)
    _drive_both(rng, (compiled,), inputs)
    compiled.eval_comb()
    for name, expr in module.assigns.items():
        assert compiled.env[name] == eval_expr(expr, compiled.env), name


def _random_words(seed, count):
    rng = random.Random(seed)
    mnemonics = [d.mnemonic for d in INSTRUCTIONS]
    words = []
    while len(words) < count:
        try:
            words.append(encode(Instruction(
                rng.choice(mnemonics),
                rd=rng.randrange(16), rs1=rng.randrange(16),
                rs2=rng.randrange(16),
                imm=rng.randrange(-2048, 2048) & ~1), num_regs=16))
        except (EncodingError, ValueError):
            continue
    return words


def test_rissp_core_lockstep_fuzz():
    """Whole-module lock-step: the full RV32E RISSP on both backends, a few
    thousand cycles of random instructions, full state compared per cycle."""
    core = build_rissp([d.mnemonic for d in INSTRUCTIONS])
    compiled = RtlSim(core, backend="compiled")
    interp = RtlSim(core, backend="interpreter")
    rng = random.Random(2025)
    for cycle, word in enumerate(_random_words(2025, 2000)):
        dmem = rng.getrandbits(32)
        for sim in (compiled, interp):
            sim.set_inputs(imem_rdata=word, dmem_rdata=dmem)
            sim.eval_comb()
        _assert_same_state(compiled, interp, f"cycle={cycle} insn={word:#x}")
        for sim in (compiled, interp):
            sim.tick()
        _assert_same_state(compiled, interp,
                           f"cycle={cycle} insn={word:#x} post-tick")


def test_compiled_cache_invalidates_on_mutation():
    """Mutating a module's assigns must recompile, not reuse stale code."""
    module = Module("mut")
    a = module.input("a", 8)
    b = module.input("b", 8)
    module.assign(module.output("o", 8), a + b)
    first = compile_module(module)
    assert compile_module(module) is first          # cache hit
    module.assigns["o"] = Binary(Op.SUB, a, b)
    second = compile_module(module)
    assert second is not first                      # fingerprint changed
    sim = RtlSim(module, backend="compiled")
    sim.set_inputs(a=5, b=3)
    sim.eval_comb()
    assert sim.get("o") == 2
