"""Assembler unit tests: directives, pseudos, expressions, macros."""

import pytest

from repro.isa import AssemblerError, assemble, decode
from repro.sim import run_program


def text(src):
    return assemble(".text\nmain:\n" + src + "\n ret\n")


def test_labels_and_branches():
    p = text(" li a0, 0\nloop:\n addi a0, a0, 1\n li a1, 5\n bne a0, a1, loop")
    assert run_program(p).exit_code == 5


def test_li_small_and_large():
    assert run_program(text(" li a0, -7")).exit_code == 0xFFFFFFF9
    assert run_program(text(" li a0, 0xDEADBEEF")).exit_code == 0xDEADBEEF


def test_la_and_data_words():
    p = assemble("""
.data
v: .word 42
.text
main:
    la a0, v
    lw a0, 0(a0)
    ret
""")
    assert run_program(p).exit_code == 42


def test_byte_half_space_directives():
    p = assemble("""
.data
b: .byte 1, 2, 3, 4
h: .half 0x1234, 0x5678
z: .space 8
w: .word 99
.text
main:
    la a0, h
    lhu a0, 2(a0)
    ret
""")
    assert run_program(p).exit_code == 0x5678


def test_asciz():
    p = assemble("""
.data
s: .asciz "AB"
.text
main:
    la a0, s
    lbu a0, 1(a0)
    ret
""")
    assert run_program(p).exit_code == ord("B")


def test_equ_and_expressions():
    p = text(" .equ K, 40\n li a0, K + 2")
    assert run_program(p).exit_code == 42


def test_shift_expressions():
    p = text(" li a0, (1 << 10) + (4096 >> 2) + (0xFF & 0x0F)")
    assert run_program(p).exit_code == 1024 + 1024 + 15


def test_pseudo_instructions():
    cases = {
        " li a1, 9\n mv a0, a1": 9,
        " li a1, 5\n neg a0, a1": 0xFFFFFFFB,
        " li a1, 0\n seqz a0, a1": 1,
        " li a1, 3\n snez a0, a1": 1,
        " li a1, 0\n not a0, a1": 0xFFFFFFFF,
    }
    for src, want in cases.items():
        assert run_program(text(src)).exit_code == want, src


def test_macro_expansion_with_args():
    p = assemble("""
.macro addmul d, a, b
    add \\d, \\a, \\b
    add \\d, \\d, \\d
.endm
.text
main:
    li a1, 3
    li a2, 4
    addmul a0, a1, a2
    ret
""")
    assert run_program(p).exit_code == 14


def test_unknown_instruction_raises():
    with pytest.raises(AssemblerError):
        assemble(".text\nmain:\n bogus a0, a1\n")


def test_rv32e_rejects_high_registers():
    with pytest.raises(AssemblerError):
        assemble(".text\nmain:\n addi a7, x0, 1\n")


def test_branch_out_of_range():
    body = ".text\nmain:\n beq x0, x0, far\n" + " nop\n" * 1500 + "far:\n ret\n"
    with pytest.raises(AssemblerError):
        assemble(body)


def test_entry_symbol():
    p = assemble(".text\nhelper:\n ret\nmain:\n li a0, 1\n ret\n")
    assert p.entry == p.symbol("main")
