"""Decoded-op cache tests: executor/spec equivalence, memoization,
self-modifying-code invalidation."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.bits import to_s32
from repro.isa.encoding import Instruction, decode, encode
from repro.isa.instructions import (
    BRANCHES, BY_MNEMONIC, Format, INSTRUCTIONS, LOADS, STORES,
)
from repro.isa.spec import HALT_EBREAK, HALT_ECALL, compile_step, step
from repro.sim import GoldenSim, Memory, run_program
from repro.sim.golden import _HALT_SENTINEL

_PAIRS = ((0, 0), (1, 2), (0xFFFFFFFF, 1), (0x7FFFFFFF, 1),
          (0x80000000, 0xFFFFFFFF), (0x55555555, 0xAAAAAAAA))


def _cases(d):
    """Instruction instances covering each mnemonic's operand space."""
    m = d.mnemonic
    if m in LOADS:
        return [Instruction(m, rd=5, rs1=3, imm=0),
                Instruction(m, rd=5, rs1=3, imm={"lb": 1, "lbu": 3,
                                                 "lh": 2, "lhu": 2}.get(m, 4)),
                Instruction(m, rd=0, rs1=3, imm=0)]
    if m in STORES:
        return [Instruction(m, rs1=3, rs2=4, imm=0),
                Instruction(m, rs1=3, rs2=4,
                            imm={"sb": 5, "sh": 6}.get(m, 8))]
    if m in BRANCHES:
        return [Instruction(m, rs1=3, rs2=4, imm=8),
                Instruction(m, rs1=3, rs2=4, imm=-8)]
    if m == "jal":
        return [Instruction(m, rd=5, imm=16), Instruction(m, rd=0, imm=8)]
    if m == "jalr":
        return [Instruction(m, rd=5, rs1=3, imm=5),
                Instruction(m, rd=0, rs1=3, imm=0)]
    if d.is_shift_imm:
        return [Instruction(m, rd=5, rs1=3, imm=s) for s in (0, 1, 31)]
    if d.fmt is Format.U:
        return [Instruction(m, rd=5, imm=0x12345000),
                Instruction(m, rd=5, imm=to_s32(0xFFFFF000))]
    if d.fmt is Format.I:
        return [Instruction(m, rd=5, rs1=3, imm=i) for i in (0, 1, -1, -2048)] \
            + [Instruction(m, rd=0, rs1=3, imm=7)]
    if d.fmt is Format.R:
        return [Instruction(m, rd=5, rs1=3, rs2=4),
                Instruction(m, rd=0, rs1=3, rs2=4)]
    return [Instruction(m)]


def _fresh_state():
    mem = Memory(4096)
    for addr in range(0, 64, 4):
        mem.store(addr + 0x100, 0x89ABCDEF ^ addr, 4)
    regs = [0] * 16
    return regs, mem


def _apply_spec(instr, regs, mem, pc):
    """The seed interpreter step: spec.step + effect application."""
    rs1 = regs[instr.rs1]
    rs2 = regs[instr.rs2]
    effects = step(instr, pc, rs1, rs2, mem.load)
    if effects.mem_write is not None:
        mw = effects.mem_write
        mem.store(mw.addr, mw.data, mw.width)
    if effects.rd is not None:
        regs[effects.rd] = effects.rd_data
    if effects.halt:
        return HALT_ECALL if effects.is_ecall else HALT_EBREAK
    return effects.next_pc


@pytest.mark.parametrize("d", INSTRUCTIONS, ids=lambda d: d.mnemonic)
def test_compiled_executor_matches_spec(d):
    """compile_step closures retire identically to step() + effects."""
    for instr in _cases(d):
        for a, b in _PAIRS:
            regs_a, mem_a = _fresh_state()
            regs_b, mem_b = _fresh_state()
            for regs in (regs_a, regs_b):
                regs[3] = 0x104 if d.mnemonic in LOADS + STORES + ("jalr",) \
                    else a
                regs[4] = b & 0xFF if d.mnemonic in STORES else b
            pc = 0x40
            want_pc = _apply_spec(instr, regs_a, mem_a, pc)
            got_pc = compile_step(instr)(regs_b, mem_b, pc)
            assert got_pc == want_pc, instr
            assert regs_a == regs_b, instr
            assert mem_a.read_blob(0, 4096) == mem_b.read_blob(0, 4096), instr


def test_decode_is_memoized():
    word = encode(Instruction("addi", rd=5, rs1=3, imm=42))
    assert decode(word) is decode(word)


def test_decoded_image_caches_ops():
    p = assemble(".text\nmain:\n li a0, 1\n ret\n")
    sim = GoldenSim(p)
    op = sim.image.get(p.entry)
    assert sim.image.get(p.entry) is op
    assert sim.image.executors[p.entry] is op.execute


def test_decoded_image_invalidate_any_byte_of_word():
    p = assemble(".text\nmain:\n li a0, 1\n ret\n")
    sim = GoldenSim(p)
    op = sim.image.get(p.entry)
    sim.image.invalidate(p.entry + 3)  # any byte within the word
    assert sim.image.get(p.entry) is not op


def _self_modifying_program():
    """Executes `addi a0, a0, 1` once, patches it to `addi a0, a0, 100`,
    then executes the patched word on the second loop iteration."""
    patched = encode(Instruction("addi", rd=10, rs1=10, imm=100))
    return assemble(f""".text
main:
    li a0, 0
    li a3, 0
    li a2, {to_s32(patched)}
    la a1, target
loop:
target:
    addi a0, a0, 1
    sw a2, 0(a1)
    addi a3, a3, 1
    li a4, 2
    blt a3, a4, loop
    ret
""")


def test_self_modifying_code_invalidates_fast_path():
    r = run_program(_self_modifying_program())
    assert r.exit_code == 101, "stale decoded op executed after store to text"


def test_self_modifying_code_invalidates_traced_path():
    r = run_program(_self_modifying_program(), trace=True)
    assert r.exit_code == 101
    assert len(r.trace) == r.instructions


def test_halt_stub_region_is_decoded_lazily():
    """The ecall halt stub lives outside the linked text; executing it via
    `ret` from main must decode through the image like any text word."""
    p = assemble(".text\nmain:\n li a0, 9\n ret\n")
    sim = GoldenSim(p)
    result = sim.run()
    assert result.halted_by == "ecall" and result.exit_code == 9
    assert _HALT_SENTINEL in sim.image.executors


def test_illegal_word_rejected_on_execution():
    from repro.sim import SimulationError
    p = assemble(".text\nmain:\n ret\n")
    p.text_words[0] = 0  # all-zeros is not a legal RV32 instruction
    with pytest.raises(SimulationError):
        run_program(p)


def test_serv_cycles_identical_traced_and_untraced():
    """Fast-path and trace-recording Serv loops share one cycle model."""
    from repro.sim import ServSim
    p = assemble(""".text
main:
    li a0, 0
    li a1, 20
loop:
    sw a0, 256(zero)
    lw a2, 256(zero)
    addi a0, a0, 1
    bne a0, a1, loop
    ret
""")
    fast = ServSim(p).run()
    recorded = ServSim(p, trace=True).run()
    assert fast.cycles == recorded.cycles
    assert fast.instructions == recorded.instructions
    assert fast.exit_code == recorded.exit_code


def test_rv32e_register_bound_enforced():
    from repro.sim import SimulationError
    word = encode(Instruction("addi", rd=20, rs1=0, imm=1), num_regs=32)
    p = assemble(".text\nmain:\n ret\n")
    p.text_words[0] = word
    with pytest.raises(SimulationError):
        run_program(p)
