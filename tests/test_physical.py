"""Physical implementation model tests (Figure 10 mechanics)."""

from repro.isa import INSTRUCTIONS
from repro.physical import (
    PAPER_IMPL_KHZ, cts_buffer_count, find_common_frequency, implement,
)
from repro.rtl import build_rissp
from repro.synth import synthesize, synthesize_serv


def _rv32e():
    return synthesize(build_rissp([d.mnemonic for d in INSTRUCTIONS],
                                  name="rissp_rv32e"), seed="rv32e")


def test_cts_buffer_tree():
    assert cts_buffer_count(1) == 0
    assert cts_buffer_count(4) == 1
    assert cts_buffer_count(16) == 1 + 4
    assert cts_buffer_count(132) > 30


def test_layout_reports_geometry():
    layout = implement(_rv32e())
    assert layout.die_width_um == layout.die_height_um
    assert 1.0 < layout.die_area_mm2 < 6.0
    assert layout.target_khz == PAPER_IMPL_KHZ
    assert layout.slack_ok


def test_ff_heavy_design_pays_utilization():
    serv = implement(synthesize_serv())
    rv = implement(_rv32e())
    assert serv.utilization < rv.utilization


def test_routing_penalty_lowers_fmax():
    report = _rv32e()
    layout = implement(report)
    assert layout.impl_fmax_khz < report.fmax_khz


def test_serv_power_parity_at_300khz():
    serv = implement(synthesize_serv())
    rv = implement(_rv32e())
    assert 0.9 < serv.power_mw / rv.power_mw < 1.2


def test_common_frequency_at_least_paper_point():
    freq = find_common_frequency([_rv32e(), synthesize_serv()])
    assert freq >= PAPER_IMPL_KHZ
