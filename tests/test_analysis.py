"""Static-analysis subsystem tests (PR 10).

The seeded-defect suite mirrors the mutation kill matrix: one instance of
every defect class is injected — a comb loop, a double driver, a dirty
generated source (several flavours), an unregistered counter, an
unpicklable task field — and the analyzers must flag *every* seed while
the clean tree reports zero findings after waivers.  Both gates run in CI.
"""

import json
import textwrap

import pytest

from repro.analysis import (
    Finding,
    WAIVERS,
    Waiver,
    apply_waivers,
    audit_compiled,
    audit_source,
    build_lint_report,
    dedup_findings,
    lint_contracts,
    lint_module,
    structural_facts,
    validate_lint_report,
    write_lint_report,
)
from repro.rtl.ir import Module, const, mux


def _rules(findings):
    return {f.rule for f in findings}


# ------------------------------------------------ seeded RTL defects


def test_seeded_comb_loop_reports_cycle_path():
    m = Module("loopy")
    a = m.wire("a", 1)
    b = m.wire("b", 1)
    m.assign(a, b & const(1, 1))
    m.assign(b, a | const(0, 1))
    facts = structural_facts(m)
    assert facts.cycle and not facts.order
    findings = lint_module(m, facts)
    loops = [f for f in findings if f.rule == "RTL001"]
    assert len(loops) == 1
    # The finding carries the full path, closed back onto its start.
    assert "a -> b -> a" in loops[0].detail


def test_seeded_double_driver_flagged():
    m = Module("dd")
    r = m.register("r", 8)
    m.connect_register("r", r)
    out = m.output("q", 8)
    m.assign(out, r)
    # The builder API refuses this; a hand-mutated module must still be
    # caught by the lint, not only by construction.
    m.assigns["r"] = const(1, 8)
    findings = lint_module(m)
    conflict = [f for f in findings if f.rule == "RTL002"]
    assert len(conflict) == 1
    assert conflict[0].location == "dd:r"
    assert "assign and register" in conflict[0].detail


def test_seeded_undriven_and_dead_signals():
    m = Module("deadish")
    m.wire("floating", 4)            # consumed but never driven -> RTL007
    m.wire("unread", 4)              # driven but never consumed -> RTL004
    m.assign("unread", const(5, 4))
    out = m.output("q", 4)
    m.assign(out, m.sig("floating"))
    rules = _rules(lint_module(m))
    assert "RTL007" in rules and "RTL004" in rules


def test_seeded_wide_shift_amount_truncates():
    m = Module("shifty")
    val = m.input("val", 8)
    amt = m.input("amt", 8)          # 3 bits suffice for an 8-bit operand
    out = m.output("q", 8)
    m.assign(out, val.shl(amt))
    findings = [f for f in lint_module(m) if f.rule == "RTL003"]
    assert len(findings) == 1
    assert "3 suffice" in findings[0].detail


def test_seeded_constant_mux_and_zero_and():
    m = Module("constsel")
    a = m.input("a", 8)
    b = m.input("b", 8)
    q1 = m.output("q1", 8)
    q2 = m.output("q2", 8)
    m.assign(q1, mux(const(1, 1), a, b))
    m.assign(q2, a & const(0, 8))
    findings = [f for f in lint_module(m) if f.rule == "RTL005"]
    assert {f.location for f in findings} == {"constsel:q1", "constsel:q2"}


def test_seeded_unused_input_port():
    m = Module("ports")
    m.input("used", 1)
    m.input("ignored", 1)
    out = m.output("q", 1)
    m.assign(out, m.sig("used"))
    findings = [f for f in lint_module(m) if f.rule == "RTL006"]
    assert [f.location for f in findings] == ["ports:ignored"]


def test_register_self_hold_is_still_dead():
    m = Module("hold")
    r = m.register("r", 8)
    m.connect_register("r", r + const(1, 8), enable=r.bit(0))
    out = m.output("q", 8)
    m.assign(out, const(0, 8))
    findings = [f for f in lint_module(m) if f.rule == "RTL004"]
    assert [f.location for f in findings] == ["hold:r"]


# ------------------------------------------------------------ waivers


def test_waivers_split_and_carry_reasons():
    waived_one = Finding("rtl", "RTL006", "instr_fence:pc", "unused")
    kept_one = Finding("rtl", "RTL006", "instr_fence:rs1_data", "unused")
    kept, waived = apply_waivers([kept_one, waived_one])
    assert kept == [kept_one]
    assert [(f, w.rule) for f, w in waived] == [(waived_one, "RTL006")]
    assert all(w.reason for w in WAIVERS)


def test_waiver_glob_matches_location_only_for_its_rule():
    w = Waiver("RTL004", "*:mepc", "csr state")
    assert w.matches(Finding("rtl", "RTL004", "rissp_x:mepc", "d"))
    assert not w.matches(Finding("rtl", "RTL006", "rissp_x:mepc", "d"))
    assert not w.matches(Finding("rtl", "RTL004", "rissp_x:mtvec", "d"))


# ------------------------------------- clean tree: shipped RTL lints zero


def test_shipped_library_blocks_lint_clean():
    from repro.rtl.library import default_library

    lib = default_library()
    findings = []
    for mnemonic in sorted(lib.mnemonics):
        findings.extend(lint_module(lib.entry(mnemonic).module))
    kept, _ = apply_waivers(dedup_findings(findings))
    assert kept == []


def test_stitched_cores_lint_clean():
    from repro.retarget import MINIMAL_SUBSET
    from repro.rtl.rissp import build_rissp

    for subset in (list(MINIMAL_SUBSET), ["addi", "add", "ecall", "mret"]):
        core = build_rissp(subset)
        kept, _ = apply_waivers(lint_module(core))
        assert kept == [], f"{subset}: {kept}"


def test_build_rissp_lint_gate_reuses_facts():
    from repro.rtl.compiled import core_fusable
    from repro.rtl.rissp import build_rissp

    core = build_rissp(["addi", "add", "ecall"])
    facts = structural_facts(core)
    assert not facts.cycle
    assert core_fusable(core, facts=facts)
    # A cycle fact vetoes fusing without touching the module.
    broken = structural_facts(core)
    broken.cycle = ("a", "b", "a")
    assert not core_fusable(core, facts=broken)


# -------------------------------------------- generated-source auditor


def _compiled_targets():
    from repro.farm import mutation_exercise_target
    from repro.rtl.compiled import compile_core, compile_fleet, compile_module

    core, _ = mutation_exercise_target()
    return (("module", compile_module(core)),
            ("core", compile_core(core)),
            ("fleet", compile_fleet(core)))


def test_gen_audit_passes_all_three_codegen_paths():
    for kind, compiled in _compiled_targets():
        assert audit_compiled(compiled, kind) == [], kind


@pytest.fixture(scope="module")
def core_source():
    from repro.farm import mutation_exercise_target
    from repro.rtl.compiled import compile_core

    core, _ = mutation_exercise_target()
    compiled = compile_core(core)
    allowed = tuple(n for n in compiled.namespace if n != "__builtins__")
    return compiled.source, allowed


# Column-pinned anchor (the leading newline rejects deeper-indented
# matches) at the hot loop's tail: retire, then the classified exit.
_TAIL = ("\n            count += 1"
         "\n            if halted:"
         "\n                break")


def _dirty(source, anchor, replacement):
    assert anchor in source
    return source.replace(anchor, replacement, 1)


def test_dirtied_template_print_flagged(core_source):
    source, allowed = core_source
    dirty = _dirty(source, _TAIL, "\n            print(count)" + _TAIL)
    assert "GEN002" in _rules(audit_source(dirty, "core", allowed))


def test_dirtied_template_foreign_global_flagged(core_source):
    source, allowed = core_source
    dirty = _dirty(source, _TAIL,
                   "\n            v_bad = MAGIC_TABLE[0]" + _TAIL)
    findings = audit_source(dirty, "core", allowed)
    assert any(f.rule == "GEN001" and "MAGIC_TABLE" in f.detail
               for f in findings)


def test_dirtied_template_import_flagged(core_source):
    source, allowed = core_source
    assert "GEN006" in _rules(
        audit_source("import json\n" + source, "core", allowed))


def test_dirtied_template_env_store_flagged(core_source):
    source, allowed = core_source
    dirty = _dirty(source, _TAIL,
                   "\n            count += 1"
                   "\n            if halted:"
                   "\n                env['dirty'] = 1"
                   "\n                break")
    assert "GEN003" in _rules(audit_source(dirty, "core", allowed))


def test_dirtied_template_bare_break_flagged(core_source):
    source, allowed = core_source
    dirty = _dirty(source, _TAIL,
                   "\n            if count == 99:"
                   "\n                break" + _TAIL)
    assert "GEN004" in _rules(audit_source(dirty, "core", allowed))


def test_classified_break_not_flagged():
    source = textwrap.dedent("""\
        def decode_comb(w):
            return w

        def run_cycles(ctx, count, limit, sink):
            fetch = ctx['fetch']
            halted = False
            while count < limit:
                w = fetch(count)
                count += 1
                if halted:
                    break
            return halted, '', count
    """)
    assert audit_source(source, "core") == []


def test_missing_required_function_flagged():
    findings = audit_source("x = 1\n", "core")
    assert {f.rule for f in findings} == {"GEN005"}
    assert {f.location.split(":")[1] for f in findings} == \
        {"decode_comb", "run_cycles"}


def test_unparsable_source_is_gen005():
    findings = audit_source("def broken(:\n", "core")
    assert [f.rule for f in findings] == ["GEN005"]


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        audit_source("x = 1\n", "netlist")


# ------------------------------------------------- repo-contract linter


def _write_tree(root, files):
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body))


def test_seeded_contract_defects_all_flagged(tmp_path):
    _write_tree(tmp_path, {
        "counting.py": """\
            def record(obs):
                obs.bump("phantom.counter")
                obs.counters["also.unknown"] += 1
        """,
        "farm/tasks.py": """\
            from dataclasses import dataclass, field
            from typing import Callable

            @dataclass(frozen=True)
            class BadTask:
                hook: Callable = None
                fallback: int = field(default_factory=lambda: 3)
        """,
        "farm/runner.py": """\
            import random
            import time

            def merge_results(rows):
                out = []
                for row in set(rows):
                    out.append((row, time.time(), random.random()))
                return out
        """,
    })
    findings = lint_contracts(tmp_path, counters=["registered.idle"],
                              bins=["bin.known"])
    rules = _rules(findings)
    # Every seeded defect class is flagged.
    assert {"CON001", "CON002", "CON003", "CON004", "CON005"} <= rules
    con4 = [f for f in findings if f.rule == "CON004"]
    assert any("Callable" in f.detail for f in con4)
    assert any("lambda" in f.detail for f in con4)
    con5 = [f for f in findings if f.rule == "CON005"]
    assert any("time.time" in f.detail for f in con5)
    assert any("random.random" in f.detail for f in con5)
    assert any("bare set" in f.detail for f in con5)


def test_conditional_hit_literals_credit_bins(tmp_path):
    _write_tree(tmp_path, {
        "scenario/map.py": """\
            def score(cov, fast):
                cov.hit("path.fast" if fast else "path.slow")
        """,
    })
    findings = lint_contracts(tmp_path, counters=[],
                              bins=["path.fast", "path.slow"])
    assert findings == []


def test_fstring_prefix_credits_counter_family(tmp_path):
    _write_tree(tmp_path, {
        "obs/use.py": """\
            def record(obs, cause):
                obs.bump(f"halt.{cause}")
        """,
    })
    assert lint_contracts(tmp_path, counters=["halt.ebreak"], bins=[]) == []


def test_clean_tree_contracts_zero():
    assert lint_contracts() == []


# ------------------------------------------- farm sharding + campaign


SAMPLE_SUBSETS = ["crc32", "rv32e"]


def test_lint_campaign_clean_and_bit_identical():
    from repro.farm import lint_campaign

    serial = lint_campaign(subsets=SAMPLE_SUBSETS, workers=1)
    sharded = lint_campaign(subsets=SAMPLE_SUBSETS, workers=4)
    assert serial["findings"] == sharded["findings"] == []
    assert serial["waived"] == sharded["waived"]
    assert serial["targets"] == sharded["targets"]
    assert serial["targets"]["cores"] == len(SAMPLE_SUBSETS)
    assert serial["targets"]["blocks"] > 0
    # Every waiver that ships is exercised by an actual finding class.
    assert {w.rule for _, w in serial["waived"]} <= \
        {w.rule for w in WAIVERS}


def test_lint_task_is_picklable_and_deterministic():
    import pickle

    from repro.farm import LintTask, lint_targets

    tasks = lint_targets(subsets=SAMPLE_SUBSETS)
    assert all(isinstance(t, LintTask) for t in tasks)
    assert [t.task_id for t in tasks] == \
        [t.task_id for t in lint_targets(subsets=SAMPLE_SUBSETS)]
    clone = pickle.loads(pickle.dumps(tasks[0]))
    assert clone == tasks[0]
    assert clone.run() == tasks[0].run()


# ------------------------------------------------- lint report artifact


def _report_inputs():
    finding = Finding("rtl", "RTL004", "m:w", "dead wire")
    waived = Finding("rtl", "RTL006", "instr_fence:pc", "unused")
    result = {"findings": [finding],
              "waived": [(waived, WAIVERS[0])],
              "targets": {"blocks": 1, "cores": 0}}
    return result, {"workers": 2}


def test_lint_report_roundtrip(tmp_path):
    result, config = _report_inputs()
    path = write_lint_report(tmp_path / "lint.json", result, config)
    document = json.loads(path.read_text())
    assert validate_lint_report(document) == []
    assert document["counts"] == {"rtl": 1, "gen": 0, "contract": 0}
    assert document["findings"][0]["rule"] == "RTL004"
    assert document["waived"][0]["reason"] == WAIVERS[0].reason
    assert document["config"] == config


def test_lint_report_validation_rejects_malformed():
    result, config = _report_inputs()
    document = build_lint_report(result, config)
    assert validate_lint_report(document) == []
    assert validate_lint_report([]) == ["report must be an object"]

    bad_kind = dict(document, kind="something-else")
    assert any("kind" in e for e in validate_lint_report(bad_kind))

    unsorted = dict(document, findings=list(reversed(
        build_lint_report({"findings": [
            Finding("rtl", "RTL004", "m:a", "d"),
            Finding("rtl", "RTL007", "m:b", "d"),
        ]}, {})["findings"])), counts={"rtl": 2, "gen": 0, "contract": 0})
    assert any("sorted" in e for e in validate_lint_report(unsorted))

    bad_counts = dict(document, counts={"rtl": 7, "gen": 0, "contract": 0})
    assert any("agree" in e for e in validate_lint_report(bad_counts))

    bare_waiver = dict(document, waived=[{"analyzer": "rtl"}])
    assert any("reason" in e for e in validate_lint_report(bare_waiver))


def test_write_refuses_invalid_report(tmp_path):
    bogus = {"findings": [Finding("netlist", "NET001", "m:a", "d")],
             "waived": [], "targets": {}}
    with pytest.raises(ValueError, match="refusing to write"):
        write_lint_report(tmp_path / "bad.json", bogus, {})
    assert not (tmp_path / "bad.json").exists()


# ------------------------------------------------------------ CLI stage


def test_cli_lint_stage(tmp_path, capsys):
    from repro.cli import parse_config, run

    out = tmp_path / "lint.json"
    config = parse_config(["lint", "--workers", "2",
                           "--lint-subsets", *SAMPLE_SUBSETS,
                           "--lint-out", str(out)])
    assert config.stages == ("lint",)
    assert config.lint_subsets == tuple(SAMPLE_SUBSETS)
    assert run(config) == 0
    captured = capsys.readouterr()
    assert captured.out == ""          # stdout stays machine-clean
    assert "lint report written" in captured.err
    document = json.loads(out.read_text())
    assert validate_lint_report(document) == []
    assert document["findings"] == []
    assert document["config"]["subsets"] == SAMPLE_SUBSETS
