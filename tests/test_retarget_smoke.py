"""End-to-end retarget smoke tests (PR 10 satellite).

The paper's field-update story, exercised as one pipeline: take firmware
that uses instructions *outside* the minimal retarget subset, rewrite it
with the verified macro substitutions, stitch a RISSP for the minimal
subset, run the structural lint clean on that core, and execute the
rewritten binary on it with the same result as the original on the
reference simulator.
"""

from repro.analysis import apply_waivers, lint_module
from repro.core import extract_subset
from repro.isa import assemble
from repro.retarget import MINIMAL_SUBSET, retarget_assembly
from repro.rtl import RisspSim, build_rissp
from repro.sim import run_program

# Uses sub / or / slli / beq / lbu / sb — all outside MINIMAL_SUBSET, so
# every one must be rewritten before the minimal core can run it.
FIRMWARE = """
.data
buf: .word 0x5a5aa5a5, 0
.text
main:
    la   a1, buf
    lbu  a2, 1(a1)
    sub  a3, a2, x0
    or   a4, a3, a2
    slli a4, a4, 3
    beq  a4, x0, done
    sb   a4, 4(a1)
    lbu  a0, 4(a1)
done:
    ret
"""


def _minimal_core():
    # ecall is the halt path every core needs; it is part of the stitch
    # contract (core_subset always includes it), not of the rewrite.
    return build_rissp(sorted(set(MINIMAL_SUBSET) | {"ecall"}),
                       name="rissp_minimal")


def test_rewrite_then_minimal_core_runs_it():
    result = retarget_assembly(FIRMWARE)
    rewritten = assemble(result.assembly)
    assert not set(extract_subset(rewritten)) - set(MINIMAL_SUBSET)
    core = _minimal_core()
    run = RisspSim(core, rewritten).run()
    assert run.exit_code == run_program(assemble(FIRMWARE)).exit_code


def test_minimal_core_lints_clean():
    # build_rissp already gates on the error-class findings; the full
    # lint (dead signals, constant muxes, width truncation) must also
    # come back empty after the shipped waivers.
    kept, waived = apply_waivers(lint_module(_minimal_core()))
    assert kept == []
    # The loadless-core dmem_rdata waiver must NOT fire here: the
    # minimal subset contains lw, so the port is genuinely read.
    assert not any(f.location.endswith(":dmem_rdata") for f, _ in waived)


def test_rewritten_macro_subset_core_lints_clean():
    # Stitch a core from exactly the instructions the rewritten firmware
    # uses (the per-deployment story) and lint that one too.
    result = retarget_assembly(FIRMWARE)
    subset = extract_subset(assemble(result.assembly)) + ["ecall"]
    core = build_rissp(sorted(set(subset)), name="rissp_retargeted")
    kept, _ = apply_waivers(lint_module(core))
    assert kept == []
