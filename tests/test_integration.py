"""Cross-module integration: compile -> RISSP RTL -> cosim for workloads."""

import pytest

from repro.compiler import compile_to_program
from repro.core import extract_subset
from repro.rtl import build_rissp, cosimulate
from repro.workloads import WORKLOADS

APPS = ["crc32", "armpit", "xgboost", "tarfind", "statemate"]


@pytest.mark.parametrize("name", APPS)
def test_workload_runs_on_generated_rissp(name):
    res = compile_to_program(WORKLOADS[name].source, "O2")
    subset = extract_subset(res.program) + ["ecall"]
    core = build_rissp(subset, name=f"rissp_{name}",
                       reset_pc=res.program.entry)
    mismatch = cosimulate(core, res.program, max_instructions=60_000)
    assert mismatch is None, mismatch
