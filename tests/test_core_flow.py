"""End-to-end methodology tests: Steps 1-3 + verification + evaluation."""

import pytest

from repro.core import RisspFlow, extract_subset, sweep_application, union_profile
from repro.compiler import compile_to_program
from repro.data import paper
from repro.isa import FULL_ISA_SIZE
from repro.workloads import WORKLOADS


@pytest.fixture(scope="module")
def flow():
    return RisspFlow()


def test_subset_extraction_from_binary():
    res = compile_to_program(WORKLOADS["xgboost"].source, "O2")
    subset = extract_subset(res.program)
    assert 10 <= len(subset) <= 20
    assert "lw" in subset and "blt" in subset


def test_isa_fraction_in_paper_band(flow):
    result = flow.generate("armpit")
    lo, hi = paper.ISA_USAGE_RANGE
    assert lo - 0.05 <= result.profile.isa_fraction <= hi + 0.05


def test_generated_core_matches_profile(flow):
    result = flow.generate("xgboost")
    core_subset = set(result.core.meta["mnemonics"])
    assert set(result.profile.mnemonics) <= core_subset
    assert "ecall" in core_subset    # halt support always included


def test_flow_with_verification(flow):
    result = flow.generate("armpit", run_verification=True)
    assert result.verified["cosim"]
    assert result.verified["riscof"]


def test_flow_with_physical(flow):
    result = flow.generate("xgboost", run_physical=True)
    assert result.layout is not None
    assert result.layout.die_area_mm2 > 0


def test_subset_core_beats_baseline(flow):
    baseline = flow.full_isa_baseline()
    result = flow.generate("xgboost")
    assert result.synth.area_ge < baseline.synth.area_ge
    assert result.synth.avg_power_mw < baseline.synth.avg_power_mw


def test_domain_union_profile():
    sweeps = [sweep_application(n).profiles["O2"]
              for n in ("armpit", "xgboost")]
    domain = union_profile("wearables", sweeps)
    assert set(domain.mnemonics) == set(sweeps[0].mnemonics) \
        | set(sweeps[1].mnemonics)


def test_flag_sweep_shape():
    sweep = sweep_application("crc32")
    assert sweep.profiles["O0"].code_size_bytes > \
        sweep.profiles["O2"].code_size_bytes
    for level in ("O0", "O1", "O2", "O3", "Oz"):
        assert 5 <= sweep.profiles[level].num_distinct <= FULL_ISA_SIZE


def test_paper_table3_subsets_synthesize(flow):
    """The paper's own Table 3 subsets drive the generator directly."""
    result = flow.generate_for_subset(
        "xgboost_paper", list(paper.TABLE3_SUBSETS["xgboost"]))
    assert result.synth.fmax_khz > 1000
