"""RTL IR, evaluator and SystemVerilog emitter tests."""

import pytest
from hypothesis import given, strategies as st

from repro.rtl import (
    IrError, Module, RtlSim, cat, const, emit_module, eval_expr, mux,
)

u32 = st.integers(0, 0xFFFFFFFF)


def alu_module():
    m = Module("alu")
    a = m.input("a", 32)
    b = m.input("b", 32)
    m.assign(m.output("sum", 32), a + b)
    m.assign(m.output("lt", 1), a.slt(b))
    m.assign(m.output("sh", 32), a.shl(b.slice(4, 0)))
    m.assign(m.output("pick", 32), mux(a.eq(b), a, a ^ b))
    return m


@given(a=u32, b=u32)
def test_eval_matches_python(a, b):
    sim = RtlSim(alu_module())
    sim.set_inputs(a=a, b=b)
    sim.eval_comb()
    assert sim.get("sum") == (a + b) & 0xFFFFFFFF
    sa = a - (1 << 32) if a >> 31 else a
    sb = b - (1 << 32) if b >> 31 else b
    assert sim.get("lt") == (1 if sa < sb else 0)
    assert sim.get("sh") == (a << (b & 31)) & 0xFFFFFFFF
    assert sim.get("pick") == (a if a == b else a ^ b)


def test_width_checks():
    m = Module("w")
    a = m.input("a", 8)
    b = m.input("b", 16)
    with pytest.raises(IrError):
        _ = a + b


def test_double_drive_rejected():
    m = Module("d")
    a = m.input("a", 1)
    out = m.output("o", 1)
    m.assign(out, a)
    with pytest.raises(IrError):
        m.assign(out, a)


def test_comb_loop_detected():
    m = Module("l")
    m.input("a", 1)
    x = m.wire("x", 1)
    y = m.wire("y", 1)
    m.assign(x, m.sig("y"))
    m.assign(y, m.sig("x"))
    m.assign(m.output("o", 1), m.sig("x"))
    with pytest.raises(IrError):
        m.check()


def test_register_tick():
    m = Module("r")
    inc = m.register("count", 8)
    m.connect_register("count", inc + const(1, 8))
    m.assign(m.output("q", 8), inc)
    sim = RtlSim(m)
    for expected in range(5):
        sim.eval_comb()
        assert sim.get("q") == expected
        sim.tick()


def test_cat_slice_ext():
    m = Module("c")
    a = m.input("a", 8)
    m.assign(m.output("o", 16), cat(a, a))
    m.assign(m.output("hi", 4), a.slice(7, 4))
    m.assign(m.output("sx", 16), a.sext(16))
    sim = RtlSim(m)
    sim.set_inputs(a=0x9C)
    sim.eval_comb()
    assert sim.get("o") == 0x9C9C
    assert sim.get("hi") == 0x9
    assert sim.get("sx") == 0xFF9C


def test_verilog_emission_golden():
    text = emit_module(alu_module())
    assert "module alu (" in text
    assert "assign sum = (a + b);" in text
    assert "$signed" in text
    assert text.strip().endswith("endmodule")


def test_verilog_for_registered_module():
    m = Module("seq")
    q = m.register("q", 4, reset_value=3)
    m.connect_register("q", q + const(1, 4))
    m.assign(m.output("o", 4), q)
    text = emit_module(m)
    assert "always_ff @(posedge clk)" in text
    assert "4'h3" in text
