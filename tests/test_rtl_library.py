"""Pre-verified library contract tests (Step 0)."""

import pytest

from repro.rtl import IsaHardwareLibrary, LibraryError
from repro.verify import block_verifier


def test_unverified_block_is_withheld():
    lib = IsaHardwareLibrary(["add", "sub"])
    with pytest.raises(LibraryError):
        lib.get_block("add")
    lib.get_block("add", require_verified=False)


def test_verify_releases_blocks():
    lib = IsaHardwareLibrary(["add", "beq", "lw"])
    results = lib.verify(block_verifier)
    assert all(results.values())
    lib.get_block("add")  # no longer raises


def test_verification_report_recorded():
    lib = IsaHardwareLibrary(["xor"])
    lib.verify(block_verifier)
    assert lib.entry("xor").verification_report["vectors"] > 50


def test_unknown_instruction():
    with pytest.raises(LibraryError):
        IsaHardwareLibrary(["madeup"])


def test_emit_sv():
    lib = IsaHardwareLibrary(["add"])
    assert "module instr_add" in lib.emit_systemverilog("add")


def test_full_library_size():
    # 40 base-ISA blocks + the mret trap-return block (PR 3).
    assert len(IsaHardwareLibrary()) == 41
    assert "mret" in IsaHardwareLibrary()
