"""Mutation smoke test for the compiled and fused RTL backends.

The point of the fast paths is speed, not leniency: running verification
on the compiled evaluator — per-cycle or through the fused whole-cycle
loop — must kill exactly the faults the interpreter kills.  This test
injects the deterministic RTL mutant set from :mod:`repro.verify.mutation`
into a RISSP core and asserts that

* every mutant trips cosimulation on the compiled backend (a mismatch, a
  "limit" pseudo-mismatch, or a simulator refusal all count as caught) —
  except mutants that are *architecturally equivalent on this program*,
  which is proven by lock-step-comparing the mutant RTL against the
  pristine RTL (the analog of the gate campaign's equivalence filter:
  cosimulation can only ever see architectural effects),
* the full mutant-kill matrix is *identical* across all three backends —
  every mutant the oracle kills is killed through the fused loop with the
  very same verdict, so the fast paths neither weaken nor accidentally
  "improve" verification,
* the pristine core still cosimulates cleanly, so the trips are the
  mutants' doing.
"""

import pytest

from repro.isa import assemble
from repro.rtl import RisspSim, build_rissp
from repro.rtl.core_sim import COSIM_FIELDS
from repro.sim import MemoryError_, SimulationError
from repro.verify.mutation import (
    apply_rtl_mutation,
    cosim_verdict,
    enumerate_rtl_mutations,
    rtl_mutant_kill_matrix,
)

_SUBSET = ["add", "addi", "sub", "and", "or", "xor", "slt", "sll", "srl",
           "lui", "lw", "sw", "beq", "bne", "jal", "jalr", "ecall"]

#: Exercises every mutated datapath: ALU ops, shifts, compare, upper-imm,
#: memory round-trips, taken/untaken branches and both jumps.
_PROGRAM = """.text
main:
    li a1, 21
    li a2, 2
    add a0, a1, a2
    sub a3, a1, a2
    and a4, a1, a2
    or a5, a1, a2
    xor t0, a1, a2
    slt t1, a2, a1
    sll t2, a1, a2
    srl s0, a1, a2
    lui gp, 0x12345
    add a0, a0, t0
    add a0, a0, t1
    add a0, a0, t2
    add a0, a0, s0
    sw a0, -32(sp)
    lw tp, -32(sp)
    beq a0, tp, good
    li a0, 0x0BAD
good:
    bne a0, zero, next
    li a0, 0x0BAD
next:
    jal s1, sub1
    add a0, a0, a3
    ret
sub1:
    addi a0, a0, 1
    jalr zero, s1, 0
"""


@pytest.fixture(scope="module")
def core():
    return build_rissp(_SUBSET)


@pytest.fixture(scope="module")
def program():
    return assemble(_PROGRAM)


def _verdict(core, program, backend):
    """Cosimulation outcome for one core: None = clean, str = how it
    tripped."""
    return cosim_verdict(core, program, backend, max_instructions=2_000)


def _architectural_trace(core, program):
    """The COSIM-visible retirement stream of a core on its own (no golden
    reference involved — pure RTL observation)."""
    try:
        result = RisspSim(core, program, trace=True).run(2_000)
    except (SimulationError, MemoryError_) as exc:
        return f"refused:{type(exc).__name__}"
    rows = [tuple(getattr(record, name) for name in COSIM_FIELDS)
            for record in result.trace]
    return (result.halted_by, tuple(rows))


def test_pristine_core_is_clean(core, program):
    assert _verdict(core, program, "compiled") is None


def test_every_mutant_trips_compiled_cosimulation(core, program):
    """Every distinguishable mutant must trip; survivors must be proven
    architecturally equivalent to the pristine core on this program."""
    mutations = enumerate_rtl_mutations(core, limit=24)
    assert len(mutations) == 24
    pristine = _architectural_trace(core, program)
    tripped = 0
    missed = []
    for mutation in mutations:
        mutant = apply_rtl_mutation(core, mutation)
        if _verdict(mutant, program, "compiled") is not None:
            tripped += 1
        elif _architectural_trace(mutant, program) != pristine:
            missed.append(mutation.description)
    assert not missed, f"compiled cosim missed distinguishable: {missed}"
    # The set must have teeth: most sampled mutants are distinguishable.
    assert tripped >= 15, f"only {tripped}/24 mutants distinguishable"


def test_backends_agree_on_mutant_verdicts(core, program):
    """The fast paths must catch a mutant exactly when the oracle does."""
    mutations = enumerate_rtl_mutations(core, limit=24)
    for mutation in mutations[::4]:
        mutant = apply_rtl_mutation(core, mutation)
        fused = _verdict(mutant, program, "fused")
        compiled = _verdict(mutant, program, "compiled")
        interpreted = _verdict(mutant, program, "interpreter")
        assert fused == compiled == interpreted, (
            f"{mutation.description}: fused={fused} compiled={compiled} "
            f"interpreter={interpreted}")


def test_fused_kill_matrix_matches_oracle(core, program):
    """Full matrix parity: every RTL mutant killed by the tree-walking
    oracle is killed *through the fused loop* (and the per-cycle compiled
    backend) with the same verdict — per-mutant, per-backend, asserted
    equal row by row.  The interpreter column makes this independent of
    the _Emitter codegen the two fast backends share; the cycle budget is
    trimmed so the oracle's runaway-mutant legs stay affordable (a limit
    kill is a limit kill at any budget)."""
    matrix = rtl_mutant_kill_matrix(
        core, program, backends=("fused", "compiled", "interpreter"),
        limit=24, max_instructions=400)
    assert len(matrix) == 24
    unequal = {description: verdicts
               for description, verdicts in matrix.items()
               if len(set(verdicts.values())) != 1}
    assert not unequal, f"kill matrices diverge: {unequal}"
    kills = sum(1 for verdicts in matrix.values()
                if verdicts["fused"] is not None)
    assert kills >= 15, f"mutant set lost its teeth: {kills}/24 killed"
