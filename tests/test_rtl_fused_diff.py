"""Differential fuzz harness: fused cycle loop vs per-cycle backends.

PR 4 fused the whole RTL cycle loop into one generated function
(:func:`repro.rtl.compiled.compile_core`).  The speedup is only
trustworthy if the fused fast path is observationally identical to the
oracles, so this suite runs the same programs lock-step on all three
backends — ``fused``, per-cycle ``compiled`` (PR 2) and the tree-walking
``interpreter`` — and compares the complete columnar RVFI trace
(including the ``trap``/``intr`` flags), the halt cause and the exit
code, row by row:

* **randomized programs** — a seeded generator mixes every ALU/shift/
  compare op with memory round-trips and bounded loops.  Since PR 6 the
  generators live in :mod:`repro.verify.fuzz` and every chunk's seed is
  derived from one base seed via :func:`repro.verify.fuzz.derive_seed` —
  the exact seed stream the multi-process farm shards, so a farm run
  reproduces this suite bit-for-bit and any failure here names the same
  ``(task-id, seed)`` pair a farm failure would;
* **randomized trap firmware** — handler installs, Zicsr traffic,
  ecall round-trips through the hardware trap unit;
* **real workloads from every registry category** — a MicroC-compiled
  embench kernel and extreme-edge app (bounded-prefix lock-step, so the
  interpreter leg stays cheap) plus the event-driven SoC firmware images
  with their MMIO platform and timer interrupts, run to halt;
* **fault injection** — corrupted fused-side rows must surface as cosim
  mismatches, proving the chunked fused compare path actually gates;
* **backend selection** — ``REPRO_RTL_BACKEND`` must pick each backend,
  and only ``fused`` may arm the fused loop.
"""

import pytest

from repro.isa import INSTRUCTIONS, assemble
from repro.rtl import build_rissp
from repro.rtl.core_sim import RisspSim, cosimulate
from repro.sim.tracing import RvfiTrace
from repro.verify.fuzz import (
    FUZZ_BASE_SEED,
    derive_seed,
    fuzz_chunk_seeds,
    random_program,
    random_trap_program,
)
from repro.workloads import WORKLOADS, build_program

BACKENDS = ("fused", "compiled", "interpreter")

#: Per-chunk seeds of the fuzz campaign — (chunk index, derived seed)
#: pairs, so every parametrized test id doubles as the replay recipe.
FUZZ_CHUNKS = list(enumerate(fuzz_chunk_seeds(FUZZ_BASE_SEED, 8)))
TRAP_FUZZ_CHUNKS = list(enumerate(fuzz_chunk_seeds(FUZZ_BASE_SEED + 1, 4)))

FULL_SUBSET = [d.mnemonic for d in INSTRUCTIONS]
FULL_TRAP_SUBSET = FULL_SUBSET + ["mret"]


@pytest.fixture(scope="module")
def full_core():
    return build_rissp(FULL_SUBSET)


@pytest.fixture(scope="module")
def trap_core():
    return build_rissp(FULL_TRAP_SUBSET)


def _rows(result):
    trace = result.trace
    return [trace.row(index) for index in range(len(trace))]


def _assert_lockstep(core, program, max_instructions, soc=None,
                     context=""):
    """Run on every backend with full tracing; all rows must be equal."""
    results = {}
    for backend in BACKENDS:
        sim = RisspSim(core, program, trace=True, backend=backend, soc=soc)
        results[backend] = sim.run(max_instructions)
    reference = results["interpreter"]
    ref_rows = _rows(reference)
    for backend in ("fused", "compiled"):
        result = results[backend]
        assert (result.exit_code, result.instructions, result.halted_by) \
            == (reference.exit_code, reference.instructions,
                reference.halted_by), f"{context}: {backend} outcome"
        rows = _rows(result)
        assert len(rows) == len(ref_rows), f"{context}: {backend} length"
        for index, (got, want) in enumerate(zip(rows, ref_rows)):
            if got != want:
                fields = [(name, a, b) for name, a, b in
                          zip(RvfiTrace.FIELDS, got, want) if a != b]
                raise AssertionError(
                    f"{context}: {backend} row {index} diverges: {fields}")
    return reference


# ---------------------------------------------------------------- fuzzing

@pytest.mark.parametrize("chunk, seed", FUZZ_CHUNKS,
                         ids=[f"chunk{i}-seed={s:#x}"
                              for i, s in FUZZ_CHUNKS])
def test_random_programs_lockstep_on_all_backends(chunk, seed, full_core):
    program = assemble(random_program(seed))
    reference = _assert_lockstep(
        full_core, program, 20_000,
        context=f"fuzz[{chunk:03d}] seed={seed:#x}")
    assert reference.halted_by == "ecall"
    # The reference itself must match the golden ISS (fused chunked cosim).
    assert cosimulate(full_core, program, max_instructions=20_000,
                      backend="fused") is None


@pytest.mark.parametrize("chunk, seed", TRAP_FUZZ_CHUNKS,
                         ids=[f"chunk{i}-seed={s:#x}"
                              for i, s in TRAP_FUZZ_CHUNKS])
def test_random_trap_firmware_lockstep_on_all_backends(chunk, seed,
                                                       trap_core):
    program = assemble(random_trap_program(seed))
    reference = _assert_lockstep(
        trap_core, program, 20_000,
        context=f"trap-fuzz[{chunk:03d}] seed={seed:#x}")
    assert reference.halted_by == "ecall"
    rows = _rows(reference)
    assert any(row[RvfiTrace.FIELDS.index("trap")] for row in rows), \
        "trap firmware never trapped"
    assert cosimulate(trap_core, program, max_instructions=20_000,
                      backend="fused") is None


# ----------------------------------------------- workload categories

@pytest.mark.parametrize("name", ["crc32", "armpit"])
def test_compiled_workload_prefix_lockstep(name, full_core):
    """One embench kernel and one extreme-edge app (MicroC-compiled):
    bounded-prefix lock-step keeps the interpreter leg affordable."""
    from repro.compiler import compile_to_program

    workload = WORKLOADS[name]
    program = compile_to_program(workload.source, "O2").program
    _assert_lockstep(full_core, program, 1_200, context=name)


@pytest.mark.parametrize("name, limit", [("uart_selftest", 8_000),
                                         ("label_refresh", 8_000),
                                         ("sensor_streaming", 1_600)])
def test_soc_firmware_lockstep_on_all_backends(name, limit, trap_core):
    """Event-driven SoC firmware (timer ISR, wfi, MMIO devices — and the
    two-source all-C streaming image) on all three backends — trap/intr
    columns included.  The asm images run to halt; the streaming image
    runs a bounded prefix so the interpreter leg stays affordable (its
    full run is fused-cosimulated in test_soc)."""
    workload = WORKLOADS[name]
    program = build_program(workload)
    reference = _assert_lockstep(trap_core, program, limit,
                                 soc=workload.soc_spec, context=name)
    if name == "sensor_streaming":
        intr_slot = RvfiTrace.FIELDS.index("intr")
        codes = {row[intr_slot] for row in _rows(reference)
                 if row[intr_slot]}
        assert codes == {7, 16}, codes      # both sources inside the prefix
    else:
        assert reference.halted_by in ("ecall", "poweroff")


def test_af_detect_irq_fused_matches_compiled(trap_core):
    """The long interrupt-driven firmware (all-MicroC since PR 5): fused
    vs per-cycle compiled to halt (the interpreter leg is covered by the
    shorter images above)."""
    workload = WORKLOADS["af_detect_irq"]
    program = build_program(workload)
    results = {}
    for backend in ("fused", "compiled"):
        sim = RisspSim(trap_core, program, trace=True, backend=backend,
                       soc=workload.soc_spec)
        results[backend] = sim.run(200_000)
    fused, compiled = results["fused"], results["compiled"]
    assert (fused.exit_code, fused.instructions, fused.halted_by) == \
        (compiled.exit_code, compiled.instructions, compiled.halted_by)
    assert _rows(fused) == _rows(compiled)
    intr_slot = RvfiTrace.FIELDS.index("intr")
    assert any(row[intr_slot] for row in _rows(fused)), \
        "firmware took no interrupts"


# ---------------------------------------------- two-source arbitration

#: Both sources armed; the sensor delivers every 50 ticks and the timer
#: fires every 100, so at t=100, 200, ... both levels are high inside the
#: same retirement window and the arbiter's fixed priority (timer above
#: sensor) decides the entry order.
TWO_SOURCE_RACE = """
.equ PWR,      0x40000
.equ MTIMECMP, 0x40108
.equ SENSOR,   0x40300
.text
main:
    la t0, handler
    csrw mtvec, t0
    li t0, MTIMECMP
    li t1, 100
    sw t1, 0(t0)
    sw x0, 4(t0)
    li t0, 0x10080           # mie = SDIE | MTIE
    csrw mie, t0
    csrsi mstatus, 8
    li s0, 0                 # timer entries
    li s1, 0                 # sensor entries
loop:
    wfi
    li t1, 4
    blt s0, t1, loop
done:
    csrci mstatus, 8
    slli t1, s0, 8
    or t1, t1, s1
    li t0, PWR
    sw t1, 0(t0)
hang:
    j hang
handler:
    csrr t0, mcause
    bgez t0, back            # (exceptions: just return)
    slli t0, t0, 1           # drop the interrupt bit
    srli t0, t0, 1
    li t1, 7
    beq t0, t1, timer
sensor:
    li t0, SENSOR
    lw t1, 4(t0)             # INDEX
    addi t1, t1, 1
    sw t1, 12(t0)            # ACK = INDEX + 1: drop the level
    addi s1, s1, 1
    j back
timer:
    li t0, MTIMECMP
    lw t1, 0(t0)
    addi t1, t1, 100
    sw t1, 0(t0)
    addi s0, s0, 1
back:
    mret
"""

#: Sensor waveform for the race image: a sample every 50 ticks.
RACE_SPEC_KWARGS = dict(sensor_samples=tuple(range(1, 40)),
                        sensor_ticks_per_sample=50)


def test_two_source_race_lockstep_on_all_backends(trap_core):
    """Timer and sensor pending in the same retirement window: all three
    RTL backends and the golden ISS must take the two entries in the
    same (fixed-priority) order, visible in the intr cause codes."""
    from repro.soc import SocSpec

    program = assemble(TWO_SOURCE_RACE)
    spec = SocSpec(**RACE_SPEC_KWARGS)
    reference = _assert_lockstep(trap_core, program, 8_000, soc=spec,
                                 context="two-source-race")
    assert reference.halted_by == "poweroff"
    intr_slot = RvfiTrace.FIELDS.index("intr")
    codes = [row[intr_slot] for row in _rows(reference)
             if row[intr_slot]]
    assert 7 in codes and 16 in codes, codes
    # Races (both levels high at the same retirement): the timer must
    # win, with the sensor entry immediately after the handler's mret —
    # at t=100k the sensor sample (every 50) and the timer (every 100)
    # are both due, so every timer entry is a race here.
    first_race = codes.index(7)
    assert codes[first_race + 1] == 16, codes
    # And the golden reference agrees retirement-by-retirement.
    assert cosimulate(trap_core, program, max_instructions=8_000,
                      soc=SocSpec(**RACE_SPEC_KWARGS),
                      backend="fused") is None


# ------------------------------------------------- fused cosim gating

def test_fused_cosim_detects_injected_row_corruption(full_core,
                                                     monkeypatch):
    """Mirror of the per-cycle read-effect injection tests: poke one
    recorded field in the fused chunk and the chunked compare must report
    exactly that field."""
    original = RisspSim._fused_run

    def corrupted(self, count, limit, trace):
        halted, reason, new_count = original(self, count, limit, trace)
        if trace is not None and len(trace):
            trace.poke(0, "rd_wdata", trace.peek(0, "rd_wdata") ^ 4)
        return halted, reason, new_count

    monkeypatch.setattr(RisspSim, "_fused_run", corrupted)
    program = assemble(random_program(derive_seed(FUZZ_BASE_SEED, 1)))
    mismatch = cosimulate(full_core, program, max_instructions=20_000,
                          backend="fused")
    assert mismatch is not None and mismatch.field == "rd_wdata"
    assert mismatch.rtl_value == mismatch.golden_value ^ 4


def test_fused_cosim_reports_limit_exhaustion(full_core):
    program = assemble(".text\nmain:\n j main\n")
    mismatch = cosimulate(full_core, program, max_instructions=100,
                          backend="fused")
    assert mismatch is not None and mismatch.field == "limit"
    assert mismatch.index == 100


# ------------------------------------------------- backend selection

def test_env_var_selects_every_backend(full_core, monkeypatch):
    program = assemble(random_program(derive_seed(FUZZ_BASE_SEED, 2)))
    outcomes = {}
    for backend in BACKENDS:
        monkeypatch.setenv("REPRO_RTL_BACKEND", backend)
        sim = RisspSim(full_core, program)
        assert sim.rtl.backend == backend
        # Only the fused backend arms the whole-cycle loop; the per-cycle
        # oracles must keep driving _cycle.
        assert (sim._fused is not None) == (backend == "fused")
        result = sim.run(20_000)
        outcomes[backend] = (result.exit_code, result.instructions,
                             result.halted_by)
    assert outcomes["fused"] == outcomes["compiled"] == \
        outcomes["interpreter"]


def test_constructor_backend_beats_env_var(full_core, monkeypatch):
    monkeypatch.setenv("REPRO_RTL_BACKEND", "interpreter")
    sim = RisspSim(full_core,
                   assemble(random_program(derive_seed(FUZZ_BASE_SEED, 3))),
                   backend="fused")
    assert sim.rtl.backend == "fused" and sim._fused is not None


def test_rissp_cores_advertise_fused_interface(full_core, trap_core):
    from repro.rtl import core_fusable

    for core in (full_core, trap_core):
        assert core.meta["fusable"] and core_fusable(core)
