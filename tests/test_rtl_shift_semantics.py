"""Shift and signed-comparison edge semantics, pinned on both backends.

The IR's contract (matching how :mod:`repro.rtl.verilog` renders these
operators and how :mod:`repro.synth.lower` bit-blasts them):

* ``SHL``/``LSHR`` by an amount >= the value width produce 0,
* ``ASHR`` saturates the amount at ``width - 1`` so the sign bit fills,
* shift amounts have their own width (may exceed the value width's range),
* ``SLT``/``SGE`` compare two's-complement values at the declared width.

Every case runs against both the interpreter (``eval_expr``) and the
compiled backend; a divergence here means ``eval_expr``'s edge handling is
wrong and must be fixed there — never replicated into the compiled code.
"""

import pytest

from repro.rtl.ir import Binary, Const, Module, Op
from repro.rtl.sim import RtlSim, eval_expr

BACKENDS = ("compiled", "interpreter")


def _shift_module(width, amount_width):
    module = Module(f"sh{width}_{amount_width}")
    a = module.input("a", width)
    b = module.input("b", amount_width)
    module.assign(module.output("shl", width), a.shl(b))
    module.assign(module.output("lshr", width), a.lshr(b))
    module.assign(module.output("ashr", width), a.ashr(b))
    return module


def _ref_shifts(a, b, width):
    """Reference semantics, written independently of eval_expr."""
    mask = (1 << width) - 1
    a &= mask
    shl = (a << b) & mask if b < width else 0
    lshr = (a >> b) if b < width else 0
    signed = a - (1 << width) if a >> (width - 1) else a
    ashr = (signed >> min(b, width - 1)) & mask
    return shl, lshr, ashr


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("width,amount_width", [(1, 1), (1, 8), (8, 3),
                                                (8, 8), (32, 5), (32, 8),
                                                (33, 8), (64, 7), (64, 8)])
def test_shift_edges(backend, width, amount_width):
    module = _shift_module(width, amount_width)
    sim = RtlSim(module, backend=backend)
    patterns = [0, 1, (1 << width) - 1, 1 << (width - 1),
                0x5A5A5A5A5A5A5A5A & ((1 << width) - 1)]
    amount_mask = (1 << amount_width) - 1
    amounts = sorted({0, 1, width - 1, width, width + 1, amount_mask} &
                     set(range(amount_mask + 1)))
    for a in patterns:
        for b in amounts:
            sim.set_inputs(a=a, b=b)
            sim.eval_comb()
            shl, lshr, ashr = _ref_shifts(a, b, width)
            context = f"{backend} w={width} a={a:#x} b={b}"
            assert sim.get("shl") == shl, f"{context} shl"
            assert sim.get("lshr") == lshr, f"{context} lshr"
            assert sim.get("ashr") == ashr, f"{context} ashr"


@pytest.mark.parametrize("backend", BACKENDS)
def test_constant_amount_shifts_fold_identically(backend):
    """Codegen folds constant shift amounts; semantics must not change."""
    width = 16
    module = Module("constsh")
    a = module.input("a", width)
    for index, amount in enumerate((0, 1, width - 1, width, width + 7)):
        b = Const(amount, 8)
        module.assign(module.output(f"shl{index}", width), a.shl(b))
        module.assign(module.output(f"lshr{index}", width), a.lshr(b))
        module.assign(module.output(f"ashr{index}", width), a.ashr(b))
    sim = RtlSim(module, backend=backend)
    for value in (0, 1, 0x8000, 0xFFFF, 0x1234):
        sim.set_inputs(a=value)
        sim.eval_comb()
        for index, amount in enumerate((0, 1, width - 1, width, width + 7)):
            shl, lshr, ashr = _ref_shifts(value, amount, width)
            assert sim.get(f"shl{index}") == shl
            assert sim.get(f"lshr{index}") == lshr
            assert sim.get(f"ashr{index}") == ashr


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("width", [1, 8, 32])
def test_signed_compare_sign_boundary(backend, width):
    module = Module(f"cmp{width}")
    a = module.input("a", width)
    b = module.input("b", width)
    module.assign(module.output("slt", 1), a.slt(b))
    module.assign(module.output("sge", 1), a.sge(b))
    module.assign(module.output("ult", 1), a.ult(b))
    sim = RtlSim(module, backend=backend)
    top = (1 << width) - 1
    most_negative = 1 << (width - 1)          # e.g. 0x80000000
    most_positive = most_negative - 1         # e.g. 0x7FFFFFFF
    boundary = {0, 1, top, most_negative, most_positive,
                (most_negative + 1) & top, (most_positive - 1) & top}

    def signed(value):
        return value - (1 << width) if value >> (width - 1) else value

    for va in boundary:
        for vb in boundary:
            sim.set_inputs(a=va, b=vb)
            sim.eval_comb()
            context = f"{backend} w={width} a={va:#x} b={vb:#x}"
            assert sim.get("slt") == int(signed(va) < signed(vb)), context
            assert sim.get("sge") == int(signed(va) >= signed(vb)), context
            assert sim.get("ult") == int(va < vb), context


def test_eval_expr_shift_semantics_direct():
    """Pin the oracle itself, independent of any Module plumbing."""
    a = Const(0b1011, 4)
    for amount, want_shl, want_lshr, want_ashr in (
            (0, 0b1011, 0b1011, 0b1011),
            (1, 0b0110, 0b0101, 0b1101),
            (3, 0b1000, 0b0001, 0b1111),
            (4, 0, 0, 0b1111),      # >= width: shl/lshr flush, ashr fills
            (15, 0, 0, 0b1111)):
        b = Const(amount, 4)
        assert eval_expr(Binary(Op.SHL, a, b), {}) == want_shl, amount
        assert eval_expr(Binary(Op.LSHR, a, b), {}) == want_lshr, amount
        assert eval_expr(Binary(Op.ASHR, a, b), {}) == want_ashr, amount
