"""Smoke tests for every script in examples/ (PR 9 satellite).

The examples are the repository's narrative front door and had zero
test coverage: a refactor could break them silently.  Each test loads
the script by path (they are not a package), runs its ``main()`` with
stdout captured, and asserts the load-bearing markers of its story —
enough to prove the pipeline behind it still runs end to end, loose
enough not to pin incidental numbers.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    try:
        sys.modules[spec.name] = module
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_examples_directory_is_fully_covered():
    # A new example must get a smoke test: compare the directory against
    # the names exercised below.
    tested = {"quickstart", "retarget_field_update",
              "smart_bandage_af_detect", "warehouse_smart_label"}
    assert {path.stem for path in EXAMPLES.glob("*.py")} == tested


def test_quickstart_runs_full_pipeline(capsys):
    out = _run_example("quickstart", capsys)
    assert "Step 1: compile for RV32E" in out
    assert "verified:    cosim=True riscof=True" in out
    assert "fmax:" in out and "EPI:" in out
    assert "Physical implementation" in out


def test_retarget_field_update_matches_reference(capsys):
    out = _run_example("retarget_field_update", capsys)
    assert "retargeted binary:" in out
    assert "-> MATCH" in out


def test_smart_bandage_af_detect_runs_to_poweroff(capsys):
    out = _run_example("smart_bandage_af_detect", capsys)
    # The firmware must actually reach the power gate with a verdict and
    # have slept in wfi (duty cycle < 100%).
    assert "UART telemetry:" in out
    assert "interrupt-driven capture:" in out
    assert "wfi sleeps the rest" in out
    assert "printed battery" in out


def test_warehouse_smart_label_compares_domain_core(capsys):
    out = _run_example("warehouse_smart_label", capsys)
    assert "domain union:" in out
    assert "domain RISSP" in out and "RISSP-RV32E" in out
    assert "less area than a full-ISA part" in out


@pytest.mark.parametrize("name", ["quickstart", "retarget_field_update",
                                  "smart_bandage_af_detect",
                                  "warehouse_smart_label"])
def test_example_defines_main(name):
    spec = importlib.util.spec_from_file_location(
        f"example_sig_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None))
