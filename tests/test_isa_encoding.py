"""Encode/decode unit and property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    BY_MNEMONIC, DecodeError, EncodingError, Format, Instruction,
    INSTRUCTIONS, decode, encode,
)


def test_catalog_has_40_instructions():
    assert len(INSTRUCTIONS) == 40


def test_catalog_compute_size_is_37():
    from repro.isa import FULL_ISA_SIZE
    assert FULL_ISA_SIZE == 37


@pytest.mark.parametrize("mnemonic", [d.mnemonic for d in INSTRUCTIONS])
def test_roundtrip_simple(mnemonic):
    d = BY_MNEMONIC[mnemonic]
    kwargs = {}
    if d.fmt in (Format.R, Format.I, Format.U, Format.J):
        kwargs["rd"] = 5
    if d.fmt in (Format.R, Format.I, Format.S, Format.B):
        kwargs["rs1"] = 3
    if d.fmt in (Format.R, Format.S, Format.B):
        kwargs["rs2"] = 7
    if d.fmt is Format.B:
        kwargs["imm"] = -8
    elif d.fmt is Format.J:
        kwargs["imm"] = 2048
    elif d.fmt is Format.U:
        kwargs["imm"] = 0x12345000
    elif d.is_shift_imm:
        kwargs["imm"] = 13
    elif d.fmt in (Format.I, Format.S):
        kwargs["imm"] = -33
    instr = Instruction(mnemonic, **kwargs)
    assert decode(encode(instr)) == instr


regs = st.integers(0, 15)
imm12 = st.integers(-2048, 2047)


@given(rd=regs, rs1=regs, rs2=regs)
def test_roundtrip_rtype(rd, rs1, rs2):
    i = Instruction("add", rd=rd, rs1=rs1, rs2=rs2)
    assert decode(encode(i)) == i


@given(rd=regs, rs1=regs, imm=imm12)
def test_roundtrip_itype(rd, rs1, imm):
    i = Instruction("addi", rd=rd, rs1=rs1, imm=imm)
    assert decode(encode(i)) == i


@given(rs1=regs, rs2=regs, imm=st.integers(-2048, 2047).map(lambda x: x * 2))
def test_roundtrip_branch(rs1, rs2, imm):
    i = Instruction("beq", rs1=rs1, rs2=rs2, imm=imm)
    assert decode(encode(i)) == i


@given(rd=regs, imm=st.integers(-(1 << 19), (1 << 19) - 1))
def test_roundtrip_lui(rd, imm):
    i = Instruction("lui", rd=rd, imm=(imm << 12) & 0xFFFFFFFF
                    if imm >= 0 else imm << 12)
    from repro.isa import sign_extend
    i = Instruction("lui", rd=rd, imm=sign_extend((imm << 12), 32))
    assert decode(encode(i)) == i


@given(rd=regs, imm=st.integers(-(1 << 20), (1 << 20) - 1)
       .map(lambda x: x * 2).filter(lambda x: -(1 << 20) <= x < (1 << 20)))
def test_roundtrip_jal(rd, imm):
    i = Instruction("jal", rd=rd, imm=imm)
    assert decode(encode(i)) == i


def test_rv32e_register_constraint():
    with pytest.raises(EncodingError):
        encode(Instruction("add", rd=16, rs1=0, rs2=0), num_regs=16)
    encode(Instruction("add", rd=16, rs1=0, rs2=0), num_regs=32)


def test_shift_imm_range():
    with pytest.raises(EncodingError):
        encode(Instruction("slli", rd=1, rs1=1, imm=32))


def test_branch_alignment():
    with pytest.raises(EncodingError):
        encode(Instruction("bne", rs1=1, rs2=2, imm=3))


def test_decode_illegal_opcode():
    with pytest.raises(DecodeError):
        decode(0x0000007F)


def test_decode_illegal_funct7():
    # add with a bogus funct7
    word = encode(Instruction("add", rd=1, rs1=2, rs2=3)) | (0x7F << 25)
    with pytest.raises(DecodeError):
        decode(word)


def test_system_decodes():
    assert decode(0x00000073).mnemonic == "ecall"
    assert decode(0x00100073).mnemonic == "ebreak"
    assert decode(0x0000000F).mnemonic == "fence"
