"""Retargeting tests: macro synthesis, verify/retry, rewriting."""

import pytest

from repro.core.subset_analysis import extract_subset
from repro.isa import assemble
from repro.retarget import (
    MAX_ATTEMPTS, MINIMAL_SUBSET, retarget_assembly, synthesize_macro,
    synthesize_macros,
)
from repro.sim import run_program


def test_minimal_subset_is_papers_twelve():
    assert len(MINIMAL_SUBSET) == 12
    assert set(MINIMAL_SUBSET) == {"addi", "add", "and", "xori", "sll",
                                   "sra", "jal", "jalr", "blt", "bltu",
                                   "lw", "sw"}


@pytest.mark.parametrize("mnemonic", ["sub", "or", "xor", "beq", "bne",
                                      "bge", "bgeu", "slt", "sltu",
                                      "slli", "srli", "srai", "andi",
                                      "ori", "lui", "sltiu"])
def test_macro_synthesis_verifies(mnemonic):
    macro = synthesize_macro(mnemonic)
    assert macro.attempts <= MAX_ATTEMPTS
    assert macro.cases_checked > 2


@pytest.mark.parametrize("mnemonic", ["lbu", "lb", "lhu", "lh", "sb",
                                      "sh", "srl"])
def test_memory_and_shift_macros_verify(mnemonic):
    macro = synthesize_macro(mnemonic)
    assert macro.cases_checked > 2


def test_retry_loop_rejects_bad_candidates():
    """sub/srli/beq/sh have deliberately wrong first candidates."""
    assert synthesize_macro("sub").attempts == 2
    assert synthesize_macro("srli").attempts == 2
    assert synthesize_macro("beq").attempts == 2
    assert synthesize_macro("or").attempts == 1


def test_rewritten_program_equivalent():
    src = """
.data
buf: .word 0x11223344, 0
.text
main:
    la   a1, buf
    lbu  a2, 1(a1)
    sub  a2, a2, x0
    or   a3, a2, a2
    slli a3, a3, 8
    xor  a0, a3, a2
    sb   a0, 4(a1)
    lbu  a4, 4(a1)
    add  a0, a0, a4
    ret
"""
    original = assemble(src)
    result = retarget_assembly(src)
    rewritten = assemble(result.assembly)
    assert run_program(original).exit_code == \
        run_program(rewritten).exit_code
    assert not set(extract_subset(rewritten)) - set(MINIMAL_SUBSET)


def test_macro_file_emitted():
    result = retarget_assembly(""".text
main:
    li a1, 4
    li a2, 9
    sub a0, a2, a1
    ret
""")
    assert ".macro sub_subst" in result.macro_file
    assert "verified on" in result.macro_file


def test_scratch_collision_legalized():
    src = """
.text
main:
    li gp, 77
    li a1, 3
    sub a0, gp, a1
    ret
"""
    result = retarget_assembly(src)
    rewritten = assemble(result.assembly)
    assert run_program(rewritten).exit_code == 74


def test_report_aggregates_attempts():
    report = synthesize_macros(["sub", "or", "beq"])
    assert report.total_attempts >= 4   # two retries + successes
    assert set(report.macros) == {"sub", "or", "beq"}
