"""Executable specification semantics tests."""

import pytest

from repro.isa import Instruction, step
from repro.isa.spec import SpecError


def eff(mnemonic, rs1=0, rs2=0, imm=0, rd=5, pc=0x100, mem=None):
    def load(addr, width, signed):
        return mem if mem is not None else 0
    return step(Instruction(mnemonic, rd=rd, rs1=1, rs2=2, imm=imm),
                pc, rs1, rs2, load)


def test_add_wraps():
    assert eff("add", 0xFFFFFFFF, 1).rd_data == 0


def test_sub():
    assert eff("sub", 5, 7).rd_data == 0xFFFFFFFE


def test_slt_signed():
    assert eff("slt", 0xFFFFFFFF, 0).rd_data == 1     # -1 < 0
    assert eff("sltu", 0xFFFFFFFF, 0).rd_data == 0    # big unsigned


def test_sra_vs_srl():
    assert eff("sra", 0x80000000, 4).rd_data == 0xF8000000
    assert eff("srl", 0x80000000, 4).rd_data == 0x08000000


def test_shift_uses_low_5_bits():
    assert eff("sll", 1, 33).rd_data == 2


def test_x0_write_is_dropped():
    e = eff("addi", 7, imm=1, rd=0)
    assert e.rd is None and e.rd_data is None


def test_branch_taken_and_not():
    assert eff("beq", 4, 4, imm=16).next_pc == 0x110
    assert eff("beq", 4, 5, imm=16).next_pc == 0x104


def test_bltu_unsigned():
    assert eff("bltu", 1, 0xFFFFFFFF, imm=8).next_pc == 0x108


def test_jal_links():
    e = eff("jal", imm=12)
    assert e.next_pc == 0x10C and e.rd_data == 0x104


def test_jalr_clears_bit0():
    e = step(Instruction("jalr", rd=1, rs1=3, imm=1), 0x100, 0x203, 0)
    assert e.next_pc == 0x204  # (0x203+1) & ~1


def test_jalr_misaligned_raises():
    with pytest.raises(SpecError):
        step(Instruction("jalr", rd=1, rs1=3, imm=2), 0x100, 0x200, 0)


def test_load_sign_extension():
    e = eff("lb", rs1=0x1000, imm=0, mem=0xFFFFFF80)
    assert e.rd_data == 0xFFFFFF80


def test_store_masks_data():
    e = eff("sb", rs1=0x1000, rs2=0x1FF, imm=2)
    assert e.mem_write.addr == 0x1002
    assert e.mem_write.data == 0xFF
    assert e.mem_write.width == 1


def test_lui_auipc():
    assert eff("lui", imm=0x12345000).rd_data == 0x12345000
    assert eff("auipc", imm=0x1000, pc=0x100).rd_data == 0x1100


def test_ecall_halts():
    e = eff("ecall")
    assert e.halt and e.is_ecall


def test_fence_is_nop():
    e = eff("fence")
    assert e.rd is None and not e.halt and e.next_pc == 0x104
