"""Schema check for the ``BENCH_*.json`` benchmark artifacts.

CI uploads these documents on every run; before PR 4 a benchmark could
write a NaN speedup or drop a field and the artifact would upload as
garbage.  :mod:`repro.core.bench_schema` now validates at write time —
these tests lock the validator itself down and re-validate whatever the
benchmark session already wrote to disk (``benchmarks`` sorts before
``tests``, so in a full tier-1 run the artifacts exist by the time this
file executes).
"""

import json
import math

import pytest

from repro.core.bench_schema import (
    bench_artifact_dir,
    validate_artifact,
    validate_artifact_file,
    write_bench_artifact,
)


def _good_document():
    """A valid *revision-1* document (no schema stamp, v1/v2 host)."""
    return {
        "bench": "rtl_throughput",
        "host": {"python": "3.11.0", "machine": "x86_64",
                 "system": "Linux"},
        "metrics": {"fused_cycles_per_sec": 2.2e5,
                    "fused_speedup_over_compiled": 6.5,
                    "notes": "ok",
                    "table": {"crc32": {"cpi": 1.0}}},
    }


def _good_v3_document():
    """A valid revision-3 document (host provenance extended in PR 8)."""
    document = _good_document()
    document["schema"] = 3
    document["host"].update(cpu_count=8,
                            platform="Linux-6.1-x86_64-with-glibc2.36")
    return document


def test_good_document_validates():
    assert validate_artifact(_good_document()) == []
    assert validate_artifact(_good_v3_document()) == []


@pytest.mark.parametrize("mutate, needle", [
    (lambda d: d.pop("bench"), "missing required field 'bench'"),
    (lambda d: d.pop("host"), "missing required field 'host'"),
    (lambda d: d.pop("metrics"), "missing required field 'metrics'"),
    (lambda d: d.update(bench=""), "bench must be"),
    (lambda d: d.update(bench="../escape"), "bench must be"),
    (lambda d: d["host"].pop("python"), "host.python"),
    (lambda d: d.update(host="laptop"), "host must be an object"),
    (lambda d: d.update(metrics={}), "non-empty object"),
    (lambda d: d.update(extra=1), "unknown top-level"),
    (lambda d: d["metrics"].update(bad=float("nan")), "non-finite"),
    (lambda d: d["metrics"].update(bad=float("inf")), "non-finite"),
    (lambda d: d["metrics"].update(bad=None), "unsupported leaf"),
    (lambda d: d["metrics"].update(bad=[1, 2]), "unsupported leaf"),
    (lambda d: d.update(metrics={"only_text": "no numbers"}),
     "no numeric values"),
])
def test_malformed_documents_rejected(mutate, needle):
    document = _good_document()
    mutate(document)
    errors = validate_artifact(document)
    assert errors and any(needle in error for error in errors), \
        (needle, errors)


def test_writer_round_trips_and_validates(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    path = write_bench_artifact("unit_test", {"speedup": 3.5})
    assert path == tmp_path / "BENCH_unit_test.json"
    assert validate_artifact_file(path) == []
    document = json.loads(path.read_text())
    assert document["metrics"]["speedup"] == 3.5
    assert document["host"]["python"]


def test_writer_refuses_malformed_payload(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    with pytest.raises(ValueError, match="malformed benchmark artifact"):
        write_bench_artifact("bad", {"speedup": math.nan})
    with pytest.raises(ValueError, match="malformed benchmark artifact"):
        write_bench_artifact("empty", {})
    assert not list(tmp_path.glob("BENCH_*.json"))    # nothing uploaded


def test_invalid_json_file_reported(tmp_path):
    path = tmp_path / "BENCH_broken.json"
    path.write_text("{not json")
    errors = validate_artifact_file(path)
    assert errors and "not valid JSON" in errors[0]


def test_on_disk_artifacts_conform():
    """Whatever the benchmark session wrote must pass the schema — this
    is the gate that turns a malformed upload into a red CI run."""
    artifacts = sorted(bench_artifact_dir().glob("BENCH_*.json"))
    if not artifacts:
        pytest.skip("no benchmark artifacts written in this session")
    errors = [error for path in artifacts
              for error in validate_artifact_file(path)]
    assert not errors, errors


def test_schema_version_stamped_and_validated():
    from repro.core.bench_schema import SCHEMA_VERSION

    document = _good_document()
    assert validate_artifact(document) == []          # v1: stamp optional
    document = _good_v3_document()
    document["schema"] = SCHEMA_VERSION
    assert validate_artifact(document) == []
    document["schema"] = 0
    assert any("schema" in e for e in validate_artifact(document))
    document["schema"] = SCHEMA_VERSION + 1           # from the future
    assert any("schema" in e for e in validate_artifact(document))
    document["schema"] = True                         # bool is not an int
    assert any("schema" in e for e in validate_artifact(document))


def test_writer_stamps_current_schema_version(tmp_path, monkeypatch):
    import json

    from repro.core.bench_schema import SCHEMA_VERSION

    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    path = write_bench_artifact("schema_probe", {"value": 1.0})
    assert json.loads(path.read_text())["schema"] == SCHEMA_VERSION


def test_v3_host_provenance_required_and_gated(tmp_path, monkeypatch):
    """Revision 3 (PR 8) requires ``host.cpu_count``/``host.platform``;
    older revisions must reject them — so a document can never claim
    provenance its revision does not define."""
    document = _good_v3_document()
    document["host"].pop("cpu_count")
    assert any("cpu_count" in e for e in validate_artifact(document))
    document = _good_v3_document()
    document["host"]["cpu_count"] = 0
    assert any("cpu_count" in e for e in validate_artifact(document))
    document = _good_v3_document()
    document["host"]["platform"] = ""
    assert any("host.platform" in e for e in validate_artifact(document))
    document = _good_v3_document()
    document["schema"] = 2                            # v2 + v3 keys
    errors = validate_artifact(document)
    assert any("requires schema >= 3" in e for e in errors)
    # The writer stamps real provenance that satisfies the gate.
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    path = write_bench_artifact("provenance_probe", {"value": 1.0})
    host = json.loads(path.read_text())["host"]
    assert host["cpu_count"] >= 1
    assert host["platform"]
