"""The pinned mypy gate over repro.analysis / repro.farm / repro.obs.

CI installs the pinned mypy and runs this for real; a local checkout
without mypy skips rather than fails — the container deliberately ships
no type checker, and the config is the contract either way.
"""

import configparser
import pathlib
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[1]


def test_mypy_config_is_pinned_to_the_three_packages():
    parser = configparser.ConfigParser()
    parser.read(ROOT / "mypy.ini")
    assert parser["mypy"]["python_version"] == "3.11"
    files = parser["mypy"]["files"]
    assert {part.strip() for part in files.split(",")} == {
        "src/repro/analysis", "src/repro/farm", "src/repro/obs"}
    strict = parser["mypy-repro.analysis.*,repro.farm.*,repro.obs.*"]
    assert strict["disallow_untyped_defs"] == "True"


def test_mypy_strict_scope_passes():
    pytest.importorskip("mypy")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini"],
        cwd=ROOT, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
