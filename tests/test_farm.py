"""Simulation-farm contract tests (PR 6).

The farm's whole promise is *determinism under parallelism*: every
campaign merged from a process pool must be bit-identical to the serial
walk, failures must surface with a replayable task description instead of
hanging the pool, and workers must rebuild their cores from the task's
subset + fingerprint — never trust a stale structure.  These tests pin
each clause, plus the process-safe compliance signature cache.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

import pytest

from repro.farm import (
    CoreMaterializeError,
    CoreSpec,
    FarmTaskError,
    cosim_campaign,
    fleet_campaign,
    fleet_lane_value,
    mutation_exercise_target,
    run_tasks,
)
from repro.isa.instructions import INSTRUCTIONS
from repro.rtl.compiled import stable_fingerprint
from repro.rtl.rissp import build_rissp
from repro.verify.fuzz import FUZZ_BASE_SEED, derive_seed, fuzz_chunk_seeds
from repro.verify.mutation import rtl_mutant_kill_matrix
from repro.verify.riscof import run_compliance
import repro.verify.riscof as riscof

#: Subset with full compliance-test scaffolding and a handful of targets.
COMPLIANCE_SUBSET = ["lw", "sw", "jal", "jalr", "addi", "lui",
                     "add", "sub", "and", "or", "slt", "ecall"]


# ------------------------------------------ bit-identical merged results

def test_kill_matrix_identical_at_any_worker_count():
    """The acceptance diff: workers=1 and workers=4 must produce the same
    kill matrix — same rows, same verdicts, same *order*."""
    core, program = mutation_exercise_target()
    serial = rtl_mutant_kill_matrix(core, program, backends=("fused",),
                                    limit=8, max_instructions=400,
                                    workers=1)
    farmed = rtl_mutant_kill_matrix(core, program, backends=("fused",),
                                    limit=8, max_instructions=400,
                                    workers=4)
    assert list(serial.items()) == list(farmed.items())
    # The campaign must have actually judged something.
    assert len(serial) == 8


def test_cosim_campaign_identical_at_any_worker_count():
    serial = cosim_campaign(workloads=("uart_selftest",), fuzz_chunks=3,
                            workers=1)
    farmed = cosim_campaign(workloads=("uart_selftest",), fuzz_chunks=3,
                            workers=4)
    assert list(serial.items()) == list(farmed.items())
    assert len(serial) == 4
    assert all(verdict is None for verdict in serial.values())


def test_fleet_campaign_identical_at_any_worker_count():
    """Sharding a fleet across the pool never changes any lane's row:
    lane workloads are a pure function of the global lane index, and
    contiguous shards merge back in lane order."""
    serial = fleet_campaign(12, workers=1, max_instructions=400)
    assert [row[0] for row in serial] == list(range(12))
    assert all(row[3] == "ecall" for row in serial)
    # Lanes with equal id values compute equal results; different ids
    # (mod the spread) differ — the campaign is actually differentiated.
    by_value: dict[int, set] = {}
    for lane, exit_code, instructions, _ in serial:
        by_value.setdefault(fleet_lane_value(lane), set()).add(
            (exit_code, instructions))
    assert all(len(group) == 1 for group in by_value.values())
    assert len({next(iter(g)) for g in by_value.values()}) == len(by_value)
    assert fleet_campaign(12, workers=2, max_instructions=400) == serial
    assert fleet_campaign(12, workers=2, shards=5,
                          max_instructions=400) == serial


def test_compliance_identical_at_any_worker_count():
    core = build_rissp(COMPLIANCE_SUBSET)
    serial = run_compliance(core, workers=1)
    farmed = run_compliance(core, workers=4, shards=4)
    assert serial.tests_run == farmed.tests_run > 0
    assert serial.mismatches == farmed.mismatches == []
    assert serial.compliant and farmed.compliant


def test_compliance_shard_merge_restores_target_order(monkeypatch):
    """Mismatches from different shards must come back in serial target
    order, not shard-completion order."""
    core = build_rissp(COMPLIANCE_SUBSET)
    real = riscof.check_compliance_mnemonic

    def flaky(core, mnemonic):
        if mnemonic in ("add", "slt"):
            return [f"{mnemonic}: signature[0] dut=0x0 ref=0x1"]
        return real(core, mnemonic)

    monkeypatch.setattr(riscof, "check_compliance_mnemonic", flaky)
    serial = run_compliance(core, workers=1)
    # Farm path with workers=1 still exercises sharding + merge in-process
    # (run_tasks takes the serial branch, so the monkeypatch applies).
    from repro.farm import sharded_compliance_mismatches
    from repro.verify.riscof import compliance_targets

    targets = compliance_targets(COMPLIANCE_SUBSET)
    merged = sharded_compliance_mismatches(core, targets, workers=1,
                                           shards=5)
    assert merged == serial.mismatches
    assert [m.split(":")[0] for m in merged] == ["add", "slt"]


# --------------------------------------------------- failure propagation

@dataclass(frozen=True)
class ExplodingTask:
    """Module-level (picklable) task that always fails."""

    task_id: str
    payload: str = "kaboom"

    def describe(self) -> str:
        return f"exploding {self.task_id}: payload={self.payload}"

    def run(self):
        raise ValueError(self.payload)


def test_worker_exception_carries_task_description():
    """A failing task must surface as FarmTaskError naming the task —
    through the real process pool (>= 2 tasks so the pool engages), not
    hang or lose the description in pickling."""
    tasks = [ExplodingTask(task_id="boom[000]"),
             ExplodingTask(task_id="boom[001]")]
    with pytest.raises(FarmTaskError) as excinfo:
        run_tasks(tasks, workers=2)
    assert excinfo.value.task_id == "boom[000]"
    assert "kaboom" in str(excinfo.value)
    assert "exploding boom[000]" in excinfo.value.description


def test_serial_path_raises_the_same_error():
    with pytest.raises(FarmTaskError) as excinfo:
        run_tasks([ExplodingTask(task_id="solo")], workers=1)
    assert excinfo.value.task_id == "solo"


class UnpicklableTask:
    """Deliberately refuses to cross a process boundary — but runs fine
    in-process, which is exactly how the old single-task serial
    short-circuit hid it."""

    task_id = "unpicklable[000]"

    def describe(self) -> str:
        return "unpicklable task"

    def run(self):
        return 42

    def __reduce__(self):
        raise TypeError("deliberately unpicklable")


def test_single_task_with_workers_goes_through_the_pool():
    """Regression: run_tasks used to short-circuit serial whenever
    ``len(tasks) <= 1`` even with ``workers > 1``, so a one-task campaign
    never exercised pickling and an unpicklable task succeeded silently —
    then failed only once the campaign grew.  A single task with
    ``workers > 1`` must take the pool path (and surface the pickling
    failure immediately)."""
    with pytest.raises(Exception, match="unpicklable"):
        run_tasks([UnpicklableTask()], workers=2)
    # The explicit serial path is still serial: no pickling involved.
    assert run_tasks([UnpicklableTask()], workers=1) == [42]
    # And zero tasks never spin up a pool.
    assert run_tasks([], workers=4) == []


def test_farm_task_error_survives_pickling():
    err = FarmTaskError("msg", "tid", "desc")
    clone = pickle.loads(pickle.dumps(err))
    assert (str(clone), clone.task_id, clone.description) == \
        ("msg", "tid", "desc")


# ------------------------------------------- worker core-rebuild contract

def test_core_spec_roundtrip_matches_fingerprint():
    core = build_rissp(COMPLIANCE_SUBSET)
    spec = CoreSpec.of(core)
    assert spec.fingerprint == stable_fingerprint(core)
    rebuilt = spec.build()
    assert stable_fingerprint(rebuilt) == spec.fingerprint
    assert spec.build() is rebuilt  # per-process memo

    blob = pickle.dumps(spec)
    assert pickle.loads(blob) == spec  # frozen dataclass round-trips


def test_tampered_fingerprint_refuses_to_materialize():
    core = build_rissp(["addi", "add", "lui", "ecall"])
    spec = CoreSpec.of(core)
    tampered = CoreSpec(mnemonics=spec.mnemonics, name=spec.name,
                        reset_pc=spec.reset_pc, trap_unit=spec.trap_unit,
                        fingerprint="0" * 64)
    with pytest.raises(CoreMaterializeError, match="fingerprint"):
        tampered.build()


def test_core_spec_rejects_unrebuildable_modules():
    from types import SimpleNamespace

    fake = SimpleNamespace(name="adhoc", meta={}, registers={})
    with pytest.raises(CoreMaterializeError, match="rebuildable"):
        CoreSpec.of(fake)


# -------------------------------------------------- seeded fuzz replay

def test_derived_seed_stream_is_deterministic():
    seeds = list(fuzz_chunk_seeds(FUZZ_BASE_SEED, 8))
    assert seeds == [derive_seed(FUZZ_BASE_SEED, i) for i in range(8)]
    assert len(set(seeds)) == 8  # splitmix64 never collides here
    assert all(0 <= seed < 2 ** 64 for seed in seeds)
    # Chunk seeds depend only on (base, index) — never process state.
    assert list(fuzz_chunk_seeds(FUZZ_BASE_SEED, 8)) == seeds


def test_fuzz_task_ids_embed_replayable_seeds():
    """The (task-id, seed) failure-report contract: every fuzz chunk's id
    carries the exact derived seed that regenerates its program."""
    results = cosim_campaign(workloads=(), fuzz_chunks=2, workers=1)
    expected = [f"fuzz[{i:03d}]:seed={derive_seed(FUZZ_BASE_SEED, i):#018x}"
                for i in range(2)]
    assert list(results) == expected


# ---------------------------------------- process-safe signature cache

def _full_core():
    return build_rissp([d.mnemonic for d in INSTRUCTIONS])


def test_signature_cache_writes_atomically(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    core = build_rissp(COMPLIANCE_SUBSET)
    assert riscof.check_compliance_mnemonic(core, "add") == []
    entries = list(tmp_path.glob("riscof-sig-add-*.bin"))
    assert len(entries) == 1
    assert len(entries[0].read_bytes()) == 4 * riscof.SIGNATURE_WORDS
    # Atomic rename leaves no temp files behind.
    assert list(tmp_path.glob("*.bin.*")) == []


def test_signature_cache_hit_skips_the_golden_run(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    core = build_rissp(COMPLIANCE_SUBSET)
    assert riscof.check_compliance_mnemonic(core, "sub") == []
    # Drop the in-process memo so the next call must go through the disk
    # cache — the cross-process path a farm worker exercises.
    riscof._reference_signature_memo.cache_clear()

    class Detonator:
        def __init__(self, *args, **kwargs):
            raise AssertionError("golden run despite warm disk cache")

    monkeypatch.setattr(riscof, "GoldenSim", Detonator)
    assert riscof.check_compliance_mnemonic(core, "sub") == []


def test_short_cache_entry_is_recomputed(tmp_path, monkeypatch):
    """A torn/truncated entry must read as absent, never as a signature."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    core = build_rissp(COMPLIANCE_SUBSET)
    assert riscof.check_compliance_mnemonic(core, "and") == []
    entry = next(tmp_path.glob("riscof-sig-and-*.bin"))
    entry.write_bytes(b"\xde\xad")  # corrupt: far too short
    riscof._reference_signature_memo.cache_clear()
    assert riscof.check_compliance_mnemonic(core, "and") == []
    assert len(entry.read_bytes()) == 4 * riscof.SIGNATURE_WORDS


def test_failed_cache_write_leaves_no_temp_files(tmp_path, monkeypatch):
    """Regression: a write failure between mkstemp and os.replace used to
    leak the temp file into the shared cache dir forever (mkstemp names
    survive the process).  The write path must unlink its temp file on
    any failure — and still produce no signature file."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    riscof._reference_signature_memo.cache_clear()

    import os as os_module

    def failing_write(fd, data):
        raise OSError("injected: disk full")

    monkeypatch.setattr(riscof.os, "write", failing_write)
    with pytest.raises(OSError, match="disk full"):
        riscof._reference_signature("add")
    monkeypatch.undo()
    assert list(tmp_path.iterdir()) == []  # no entry, no stray temp

    # A failing replace (entry path turned into a directory) must also
    # clean up its temp file.
    riscof._reference_signature_memo.cache_clear()
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    program = riscof._compliance_binary("add")
    digest = riscof._program_digest(program)
    entry = tmp_path / f"riscof-sig-add-{digest}.bin"
    entry.mkdir()
    with pytest.raises(OSError):
        riscof._reference_signature("add")
    entry.rmdir()
    assert list(tmp_path.iterdir()) == []


def test_cache_key_distinguishes_programs(tmp_path, monkeypatch):
    """Two mnemonics can never interleave under one key: the file name
    carries both the mnemonic and the program content digest."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    core = build_rissp(COMPLIANCE_SUBSET)
    assert riscof.check_compliance_mnemonic(core, "or") == []
    assert riscof.check_compliance_mnemonic(core, "slt") == []
    names = sorted(p.name for p in tmp_path.glob("riscof-sig-*.bin"))
    assert len(names) == 2 and names[0] != names[1]
    digests = {name.rsplit("-", 1)[1] for name in names}
    assert len(digests) == 2  # distinct programs -> distinct digests
