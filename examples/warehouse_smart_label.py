"""Extreme-edge scenario: item-level smart labels (Table 1 "short-lived").

A logistics domain ships one FlexIC across several label firmwares, so the
RISSP is generated for the *domain*: the union of the subsets of all
firmware the label family runs (the paper's 'set of applications in a
domain').  Compares the domain RISSP against per-app cores and the
full-ISA baseline.
"""

from repro import RisspFlow
from repro.core import sweep_application, union_profile

APPS = ("crc32", "statemate", "tarfind")   # checksum, FSM, manifest scan


def main() -> None:
    flow = RisspFlow()
    profiles = [sweep_application(name).profiles["O2"] for name in APPS]
    domain = union_profile("smart-label", profiles)
    print("per-application subsets:")
    for profile in profiles:
        print(f"  {profile.name:<10} {profile.num_distinct:2d} distinct")
    print(f"domain union: {domain.num_distinct} distinct "
          f"({', '.join(domain.mnemonics)})\n")

    domain_core = flow.generate_for_subset("smart_label",
                                           list(domain.mnemonics))
    baseline = flow.full_isa_baseline()
    print(f"{'design':<14}{'area GE':>10}{'fmax kHz':>10}{'power mW':>10}")
    for name, result in (("domain RISSP", domain_core),
                         ("RISSP-RV32E", baseline)):
        synth = result.synth
        print(f"{name:<14}{synth.area_ge:>10.0f}{synth.fmax_khz:>10}"
              f"{synth.avg_power_mw:>10.3f}")
    saving = 100 * (1 - domain_core.synth.avg_area_ge
                    / baseline.synth.avg_area_ge)
    print(f"\none domain chip serves all {len(APPS)} firmwares at "
          f"{saving:.0f}% less area than a full-ISA part")


if __name__ == "__main__":
    main()
