"""Extreme-edge scenario: a single-use smart wound dressing with AF
detection (the paper's af_detect application, Table 1 "short-lived").

Simulates the APPT pipeline on the generated RISSP cycle-by-cycle and
reports detection output, energy per classification, and expected battery
life for a printed 10 mWh cell.
"""

from repro import RisspFlow
from repro.rtl import RisspSim


def main() -> None:
    flow = RisspFlow()
    result = flow.generate("af_detect")
    print(f"RISSP for af_detect: {result.profile.num_distinct} "
          f"instructions, {result.synth.area_ge:.0f} GE, "
          f"fmax {result.synth.fmax_khz} kHz")

    sim = RisspSim(result.core, result.program)
    run = sim.run(max_instructions=2_000_000)
    af = run.exit_code >> 12
    peaks = (run.exit_code >> 6) & 63
    hits = run.exit_code & 63
    print(f"\nECG window processed in {run.cycles} cycles "
          f"({run.instructions} instructions, CPI "
          f"{run.cycles / run.instructions:.1f})")
    print(f"R peaks: {peaks}, Bloom pair hits: {hits}, "
          f"AF flag: {'AF suspected' if af else 'regular rhythm'}")

    epi_nj = result.synth.energy_per_instruction_nj(1.0)
    energy_uj = epi_nj * run.instructions / 1000.0
    window_s = run.cycles / (result.synth.fmax_khz * 1000.0)
    print(f"\nper-window cost: {energy_uj:.2f} uJ in {window_s * 1000:.1f} ms")
    battery_mwh = 10.0
    windows = battery_mwh * 3.6e3 * 1e3 / energy_uj
    print(f"a 10 mWh printed battery sustains ~{windows / 1e6:.1f}M "
          f"windows — weeks of monitoring for a days-lifetime dressing")


if __name__ == "__main__":
    main()
