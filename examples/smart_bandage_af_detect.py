"""Extreme-edge scenario: a single-use smart wound dressing with AF
detection (the paper's af_detect application, Table 1 "short-lived").

PR 3 upgraded this from a run-to-completion kernel to the way the real
device operates: a machine-timer ISR samples the ECG front-end
(SensorPort) into a buffer while the core sleeps in ``wfi``, the
APPT-style analysis stage classifies the window, the verdict goes out
the UART, and the firmware powers the device down through the power
gate.  Since PR 5 the *entire* firmware — ISR, trap setup and analysis —
is one MicroC translation unit: the ``__interrupt`` qualifier and the
``__csrw``/``__csrs``/``__csrc``/``__wfi`` intrinsics replaced the
hand-written assembly runtime, so the paper's C toolflow really does
carry the whole application.  The RISSP runs it cycle-by-cycle; the
duty cycle (retired instructions vs. elapsed timer ticks) is what sizes
the printed battery.
"""

from repro import RisspFlow
from repro.rtl import RisspSim


def main() -> None:
    flow = RisspFlow()
    result = flow.generate("af_detect_irq")
    print(f"RISSP for af_detect_irq (all-C firmware, -{result.profile.opt_level}): "
          f"{result.profile.num_distinct} compute instructions "
          f"(+ {len(result.profile.system_mnemonics)} machine-mode ops), "
          f"{result.synth.area_ge:.0f} GE, "
          f"fmax {result.synth.fmax_khz} kHz")

    sim = RisspSim(result.core, result.program, soc=result.soc_spec)
    run = sim.run(max_instructions=2_000_000)
    af = run.exit_code >> 12
    peaks = (run.exit_code >> 6) & 63
    irregular = run.exit_code & 63
    verdict = bytes(sim.soc.uart.output).decode()
    elapsed = sim.soc.timer.mtime                 # timer ticks incl. sleep
    duty = run.instructions / elapsed if elapsed else 1.0
    print(f"\nECG window: {peaks} R peaks, {irregular} irregular RR "
          f"pairs -> {'AF suspected' if af else 'regular rhythm'} "
          f"(UART telemetry: {verdict!r})")
    print(f"interrupt-driven capture: {run.instructions} instructions "
          f"retired across {elapsed} timer ticks "
          f"({100 * duty:.1f}% duty cycle; wfi sleeps the rest)")

    epi_nj = result.synth.energy_per_instruction_nj(1.0)
    energy_uj = epi_nj * run.instructions / 1000.0
    window_s = elapsed / (result.synth.fmax_khz * 1000.0)
    print(f"\nper-window cost: {energy_uj:.2f} uJ of compute over a "
          f"{window_s * 1000:.1f} ms window")
    battery_mwh = 10.0
    windows = battery_mwh * 3.6e3 * 1e3 / energy_uj
    print(f"a 10 mWh printed battery sustains ~{windows / 1e6:.1f}M "
          f"windows — weeks of monitoring for a days-lifetime dressing, "
          f"and duty-cycling makes the radio/sensor the budget, not the "
          f"core")


if __name__ == "__main__":
    main()
