"""Quickstart: generate a RISSP for one application, end to end.

Runs the paper's Figure 2 pipeline on the armpit malodour classifier:
compile -> extract subset -> stitch pre-verified blocks -> verify ->
synthesize -> physically implement, printing each step's result.
"""

from repro import RisspFlow


def main() -> None:
    flow = RisspFlow()

    print("== Step 1: compile for RV32E and extract the subset ==")
    result = flow.generate("armpit", run_verification=True,
                           run_physical=True)
    profile = result.profile
    print(f"application: {result.name}")
    print(f"codesize:    {profile.code_size_bytes} bytes "
          f"({profile.static_instructions} instructions)")
    print(f"subset:      {profile.num_distinct} distinct instructions "
          f"({100 * profile.isa_fraction:.0f}% of the 37-instruction ISA)")
    print(f"             {', '.join(profile.mnemonics)}")

    print("\n== Steps 2-3: RISSP stitched from pre-verified blocks ==")
    print(f"core module: {result.core.name} "
          f"({len(result.core.assigns)} RTL assignments)")
    print(f"verified:    cosim={result.verified['cosim']} "
          f"riscof={result.verified['riscof']}")

    print("\n== Synthesis (FlexIC Gen3 0.6um IGZO) ==")
    synth = result.synth
    print(f"fmax:        {synth.fmax_khz} kHz")
    print(f"area:        {synth.area_ge:.0f} NAND2-eq gates "
          f"(FF share {100 * synth.ff_area_fraction:.1f}%)")
    print(f"power@fmax:  {synth.power_at_fmax.total_mw:.3f} mW")
    print(f"EPI:         {synth.energy_per_instruction_nj(1.0):.3f} nJ")

    baseline = flow.full_isa_baseline()
    area_saving = 100 * (1 - synth.avg_area_ge
                         / baseline.synth.avg_area_ge)
    power_saving = 100 * (1 - synth.avg_power_mw
                          / baseline.synth.avg_power_mw)
    print(f"\nvs RISSP-RV32E: {area_saving:.1f}% smaller, "
          f"{power_saving:.1f}% lower power")

    print("\n== Physical implementation @ 300 kHz / 3 V ==")
    print(result.layout.summary_row())


if __name__ == "__main__":
    main()
