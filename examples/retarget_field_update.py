"""Extreme-edge scenario: firmware update for a long-lasting device (§5).

A deployed smart-garment RISSP supports only the minimal 12-instruction
subset.  A firmware update arrives compiled for the full RV32E ISA; the
retargeting tool rewrites it (propose -> verify -> retry per instruction)
and we prove the update runs bit-identically on the deployed core.
"""

from repro import MINIMAL_SUBSET, RisspFlow, retarget_assembly
from repro.compiler import compile_to_assembly
from repro.core import extract_subset
from repro.isa import assemble
from repro.rtl import RisspSim
from repro.sim import run_program
from repro.workloads import WORKLOADS


def main() -> None:
    print(f"deployed core subset ({len(MINIMAL_SUBSET)}): "
          f"{', '.join(MINIMAL_SUBSET)}\n")

    assembly = compile_to_assembly(WORKLOADS["xgboost"].source, "O2")
    original = assemble(assembly)
    reference = run_program(original, max_instructions=10_000_000)
    print(f"update compiled for full ISA: "
          f"{original.code_size_bytes} bytes, "
          f"{len(extract_subset(original))} distinct instructions")

    result = retarget_assembly(assembly)
    print(f"\nmacro synthesis: {len(result.report.macros)} instructions "
          f"rewritten in {result.report.total_attempts} total attempts")
    for name, macro in sorted(result.report.macros.items()):
        print(f"  {name:<6} verified on {macro.cases_checked:3d} cases "
              f"({macro.attempts} attempt(s))")

    retargeted = assemble(result.assembly)
    print(f"\nretargeted binary: {retargeted.code_size_bytes} bytes "
          f"(+{100 * (retargeted.code_size_bytes / original.code_size_bytes - 1):.1f}%), "
          f"{len(extract_subset(retargeted))} distinct instructions")

    flow = RisspFlow()
    deployed = flow.generate_for_subset("deployed", list(MINIMAL_SUBSET))
    run = RisspSim(deployed.core, retargeted).run(
        max_instructions=50_000_000)
    print(f"\non-device result: {run.exit_code} "
          f"(reference {reference.exit_code}) -> "
          f"{'MATCH' if run.exit_code == reference.exit_code else 'FAIL'}")


if __name__ == "__main__":
    main()
